"""Tests for the controller extensions: fault-knowledge modes and Start-Gap."""

import numpy as np
import pytest

from repro.coding.cost import saw_then_energy
from repro.coding.registry import make_encoder
from repro.errors import ConfigurationError
from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap
from repro.pcm.wearlevel import StartGapWearLeveler


def _line(rng):
    return [int(rng.integers(0, 1 << 32)) << 32 | int(rng.integers(0, 1 << 32)) for _ in range(8)]


def _controller(rows=16, fault_map=None, fault_knowledge="oracle", wear_leveler=None,
                encoder_name="vcc-stored", seed=0):
    encoder = make_encoder(encoder_name, num_cosets=64, cost_function=saw_then_energy(), seed=seed)
    array = PCMArray(rows=rows, row_bits=512, fault_map=fault_map, seed=seed)
    return MemoryController(
        array=array,
        encoder=encoder,
        config=ControllerConfig(),
        fault_knowledge=fault_knowledge,
        wear_leveler=wear_leveler,
    )


class TestFaultKnowledgeModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            _controller(fault_knowledge="psychic")

    def test_none_mode_hides_faults_from_encoder(self, rng):
        fault_map = FaultMap(rows=16, cells_per_row=256, fault_rate=0.02, seed=1)
        blind = _controller(fault_map=fault_map, fault_knowledge="none", seed=1)
        oracle = _controller(fault_map=fault_map, fault_knowledge="oracle", seed=1)
        for address in range(16):
            line = _line(rng)
            blind.write_line(address, line)
            oracle.write_line(address, line)
        # Without fault knowledge the encoder cannot mask stuck cells.
        assert oracle.stats.saw_cells < blind.stats.saw_cells

    def test_discovered_mode_builds_repository(self, rng):
        fault_map = FaultMap(rows=16, cells_per_row=256, fault_rate=0.02, seed=2)
        controller = _controller(fault_map=fault_map, fault_knowledge="discovered", seed=2)
        assert controller.fault_repository is not None
        for address in range(16):
            controller.write_line(address, _line(rng))
        assert controller.fault_repository.total_known_faults() > 0

    def test_discovered_mode_improves_over_repeat_writes(self, rng):
        # On the first visit to a row the repository knows nothing; after
        # discovery, subsequent writes can mask the faults, so the SAW rate
        # of later passes drops towards the oracle level.
        fault_map = FaultMap(rows=8, cells_per_row=256, fault_rate=0.02, seed=3)
        controller = _controller(rows=8, fault_map=fault_map, fault_knowledge="discovered", seed=3)
        first_pass = 0
        for address in range(8):
            first_pass += controller.write_line(address, _line(rng)).saw_cells
        later_pass = 0
        for address in range(8):
            later_pass += controller.write_line(address, _line(rng)).saw_cells
        assert later_pass < first_pass

    def test_use_fault_context_false_maps_to_none(self):
        encoder = make_encoder("unencoded")
        array = PCMArray(rows=4, row_bits=512, seed=0)
        controller = MemoryController(array=array, encoder=encoder, use_fault_context=False)
        assert controller.fault_knowledge == "none"


class TestStartGapIntegration:
    def test_requires_spare_row(self):
        leveler = StartGapWearLeveler(rows=16)
        with pytest.raises(ConfigurationError):
            _controller(rows=16, wear_leveler=leveler)

    def test_addresses_spread_across_physical_rows(self, rng):
        leveler = StartGapWearLeveler(rows=8, gap_write_interval=4)
        controller = _controller(rows=9, wear_leveler=leveler, encoder_name="unencoded")
        physical_rows = set()
        for _ in range(80):
            controller.write_line(0, _line(rng))
            physical_rows.add(controller.row_for_address(0))
        # The hot logical row migrates across several physical rows.
        assert len(physical_rows) >= 3

    def test_gap_moves_add_migration_writes(self, rng):
        leveler = StartGapWearLeveler(rows=8, gap_write_interval=2)
        controller = _controller(rows=9, wear_leveler=leveler, encoder_name="unencoded")
        writes = 10
        for _ in range(writes):
            controller.write_line(1, _line(rng))
        # Every gap movement performs one extra row write.
        assert controller.stats.rows_written == writes + leveler.gap_moves
        assert leveler.gap_moves > 0

    def test_wear_spread_improves_with_leveling(self, rng):
        # Hammer one logical row; with Start-Gap the wear spreads over more
        # physical rows than without.
        from repro.pcm.endurance import EnduranceModel

        def max_row_wear(wear_leveler, rows):
            encoder = make_encoder("unencoded", cost_function=saw_then_energy())
            array = PCMArray(
                rows=rows, row_bits=512, seed=4,
                endurance_model=EnduranceModel(mean_writes=10_000, coefficient_of_variation=0.0),
            )
            controller = MemoryController(
                array=array, encoder=encoder, wear_leveler=wear_leveler
            )
            for _ in range(120):
                controller.write_line(0, _line(rng))
            return max(array.wear_of_row(r).max() for r in range(rows))

        unlevelled = max_row_wear(None, rows=9)
        levelled = max_row_wear(StartGapWearLeveler(rows=8, gap_write_interval=4), rows=9)
        assert levelled < unlevelled
