"""Start-Gap wear leveling integrated with the memory controller.

Covers the contract between :class:`repro.pcm.wearlevel.StartGapWearLeveler`
and :class:`repro.memctrl.controller.MemoryController`: auxiliary bits
migrate with their row, the logical-to-physical mapping stays consistent
after the gap wraps the whole array, migration writes genuinely wear the
destination cells, and the migration's energy/SAW accounting lands in
:class:`repro.pcm.stats.WriteStats`.
"""

import numpy as np
import pytest

from repro.coding.registry import make_encoder
from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap
from repro.pcm.wearlevel import StartGapWearLeveler
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng

ROWS = 8
INTERVAL = 4


def _controller(
    encoder_name="dbi",
    rows=ROWS,
    interval=INTERVAL,
    fault_map=None,
    endurance_model=None,
    encrypt=False,
    seed=13,
):
    technology = CellTechnology.MLC
    leveler = StartGapWearLeveler(rows=rows, gap_write_interval=interval)
    array = PCMArray(
        rows=leveler.physical_rows_required,
        row_bits=512,
        technology=technology,
        fault_map=fault_map,
        endurance_model=endurance_model,
        seed=seed,
    )
    encoder = make_encoder(encoder_name, word_bits=64, technology=technology)
    return MemoryController(
        array=array,
        encoder=encoder,
        config=ControllerConfig(encrypt=encrypt),
        wear_leveler=leveler,
    )


def _random_line(rng, words_per_line=8, word_bits=64):
    return [random_word(rng, word_bits) for _ in range(words_per_line)]


class TestStartGapIntegration:
    def test_aux_bits_migrate_with_their_row(self):
        """Data written through an aux-bit encoder survives gap movements."""
        rng = make_rng(1, "startgap-aux")
        controller = _controller(encoder_name="dbi")
        written = {}
        for address in range(ROWS):
            written[address] = _random_line(rng)
            controller.write_line(address, written[address])
        # Trigger several migrations with writes to a single hot line.
        hot = _random_line(rng)
        written[0] = hot
        for _ in range(3 * INTERVAL):
            controller.write_line(0, hot)
        assert controller.wear_leveler.gap_moves >= 3
        for address, words in written.items():
            assert controller.read_line(address) == words

    def test_mapping_consistent_after_gap_wraps_the_array(self):
        """A full gap rotation leaves every line readable at its new row."""
        rng = make_rng(2, "startgap-wrap")
        controller = _controller(encoder_name="dbi")
        leveler = controller.wear_leveler
        written = {}
        for address in range(ROWS):
            written[address] = _random_line(rng)
            controller.write_line(address, written[address])
        # Drive enough writes for the gap to walk through every physical
        # slot at least once (one full wrap is rows + 1 movements).
        wraps = leveler.physical_rows_required + 2
        address_cycle = 0
        for _ in range(wraps * INTERVAL):
            address = address_cycle % ROWS
            address_cycle += 1
            written[address] = _random_line(rng)
            controller.write_line(address, written[address])
        assert leveler.gap_moves >= leveler.physical_rows_required + 1
        # The permutation is still a bijection onto the non-gap rows...
        mapping = leveler.mapping_snapshot()
        assert sorted(mapping.keys()) == list(range(ROWS))
        assert len(set(mapping.values())) == ROWS
        assert leveler.gap_position not in mapping.values()
        # ...and every logical line reads back the last data written to it.
        for address, words in written.items():
            assert controller.read_line(address) == words

    def test_migration_wears_destination_cells(self):
        """The Start-Gap row copy is a genuine write that accumulates wear."""
        controller = _controller(
            encoder_name="unencoded",
            endurance_model=EnduranceModel(mean_writes=1e9, coefficient_of_variation=0.1),
        )
        rng = make_rng(3, "startgap-wear")
        leveler = controller.wear_leveler
        # The first movement copies the row below the gap into the gap slot
        # (the spare row, never written before), so any wear there comes
        # from the migration alone.
        destination = leveler.gap_position
        assert not controller.array.wear_of_row(destination).any()
        while leveler.gap_moves == 0:
            controller.write_line(0, _random_line(rng))
        assert controller.array.wear_of_row(destination).any()

    def test_migration_charges_aux_energy(self):
        """Migrated auxiliary bits are charged like any other aux write."""
        rng = make_rng(4, "startgap-aux-energy")
        controller = _controller(encoder_name="dbi")
        for address in range(ROWS):
            controller.write_line(address, _random_line(rng))
        per_line_aux = controller.stats.aux_energy_pj
        while controller.wear_leveler.gap_moves < 4 * (ROWS + 1):
            result = controller.write_line(int(rng.integers(0, ROWS)), _random_line(rng))
            per_line_aux += result.aux_energy_pj
        # Accumulated aux energy exceeds the sum of the per-line results:
        # the surplus is the migrated aux bits (dropped before the fix).
        assert controller.stats.aux_energy_pj > per_line_aux

    def test_migration_counts_saw_outcome(self):
        """A migration landing on stuck cells contributes to the SAW stats."""
        fault_map = FaultMap(
            rows=ROWS + 1, cells_per_row=256, technology=CellTechnology.MLC,
            fault_rate=5e-2, seed=11,
        )
        controller = _controller(encoder_name="unencoded", fault_map=fault_map)
        rng = make_rng(5, "startgap-saw")
        per_line_saw = 0
        while controller.wear_leveler.gap_moves < 2 * (ROWS + 1):
            result = controller.write_line(
                int(rng.integers(0, ROWS)), _random_line(rng)
            )
            per_line_saw += result.saw_cells
        # With a 5% stuck rate the ~2(rows+1) migrations are overwhelmingly
        # likely to hit stuck-at-wrong cells of their own.
        assert controller.stats.saw_cells > per_line_saw
