"""Bit-identity of the batched replay engine against the scalar write path.

The contract of :meth:`repro.memctrl.controller.MemoryController.replay_trace`
is that every per-write accounting value equals what the corresponding
sequence of :meth:`write_line` calls produces — for every registry encoder,
both cell technologies, with faults, wear, encryption, and wear leveling in
play.  The scalar path is the oracle.
"""

import numpy as np
import pytest

from repro.coding.registry import available_encoders, make_encoder
from repro.errors import ConfigurationError
from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap
from repro.pcm.wearlevel import StartGapWearLeveler
from repro.sim.harness import TechniqueSpec, build_controller
from repro.traces.synthetic import generate_trace

ROWS = 16
TRACE = {"num_writebacks": 12, "memory_lines": ROWS, "line_bits": 512, "word_bits": 64}


def _trace(seed=9):
    return generate_trace("mcf", seed=seed, **TRACE)


def _controller(name, technology, seed=9):
    return build_controller(
        TechniqueSpec(encoder=name, cost="saw-then-energy", num_cosets=16),
        rows=ROWS,
        technology=technology,
        fault_map=FaultMap(
            rows=ROWS,
            cells_per_row=512 // technology.bits_per_cell,
            technology=technology,
            fault_rate=1e-2,
            seed=seed,
        ),
        endurance_model=EnduranceModel(mean_writes=30, coefficient_of_variation=0.2),
        seed=seed,
        encrypt=True,
    )


def _drive_scalar(controller, trace, repetitions):
    results = []
    for _ in range(repetitions):
        for record in trace:
            results.append(controller.write_line(record.address, list(record.words)))
    return results


def assert_parity(scalar_results, replay):
    assert replay.writes == len(scalar_results)
    for index, line in enumerate(scalar_results):
        assert line.address == replay.addresses[index]
        assert line.row_index == replay.row_indices[index]
        assert line.data_energy_pj == replay.data_energy_pj[index]
        assert line.aux_energy_pj == replay.aux_energy_pj[index]
        assert line.cells_changed == replay.cells_changed[index]
        assert line.bits_changed == replay.bits_changed[index]
        assert line.saw_cells == replay.saw_cells[index]
        assert list(line.saw_bits_per_word) == list(replay.saw_bits_per_word[index])
        assert line.newly_stuck_cells == replay.newly_stuck_cells[index]


class TestReplayParity:
    @pytest.mark.parametrize("name", available_encoders())
    @pytest.mark.parametrize("technology", [CellTechnology.MLC, CellTechnology.SLC])
    def test_registry_encoder_parity(self, name, technology):
        """Replay accounting is bit-identical to write_line for every encoder."""
        trace = _trace()
        scalar = _drive_scalar(_controller(name, technology), trace, repetitions=2)
        replay = _controller(name, technology).replay_trace(trace, repetitions=2)
        assert_parity(scalar, replay)

    @pytest.mark.parametrize("name", ["unencoded", "rcc"])
    def test_parity_without_encryption(self, name):
        trace = _trace()

        def build():
            return build_controller(
                TechniqueSpec(encoder=name, cost="saw-then-energy", num_cosets=16),
                rows=ROWS,
                seed=3,
                encrypt=False,
            )

        scalar = _drive_scalar(build(), trace, repetitions=2)
        replay = build().replay_trace(trace, repetitions=2)
        assert_parity(scalar, replay)

    @pytest.mark.parametrize("fault_knowledge", ["oracle", "discovered", "none"])
    def test_parity_across_fault_knowledge_modes(self, fault_knowledge):
        trace = _trace()

        def build():
            technology = CellTechnology.MLC
            array = PCMArray(
                rows=ROWS,
                row_bits=512,
                technology=technology,
                fault_map=FaultMap(
                    rows=ROWS, cells_per_row=256, technology=technology, fault_rate=1e-2, seed=5
                ),
                seed=5,
            )
            encoder = make_encoder("unencoded", word_bits=64, technology=technology)
            return MemoryController(
                array=array, encoder=encoder, fault_knowledge=fault_knowledge
            )

        scalar = _drive_scalar(build(), trace, repetitions=3)
        replay = build().replay_trace(trace, repetitions=3)
        assert_parity(scalar, replay)

    @pytest.mark.parametrize("name", ["unencoded", "dbi"])
    def test_parity_with_wear_leveling(self, name):
        """Start-Gap migrations happen at identical points on both paths."""
        trace = _trace()

        def build():
            technology = CellTechnology.MLC
            leveler = StartGapWearLeveler(rows=ROWS, gap_write_interval=5)
            array = PCMArray(
                rows=leveler.physical_rows_required,
                row_bits=512,
                technology=technology,
                endurance_model=EnduranceModel(mean_writes=40, coefficient_of_variation=0.2),
                seed=7,
            )
            encoder = make_encoder(name, word_bits=64, technology=technology)
            return MemoryController(array=array, encoder=encoder, wear_leveler=leveler)

        first = build()
        scalar = _drive_scalar(first, trace, repetitions=3)
        second = build()
        replay = second.replay_trace(trace, repetitions=3)
        assert_parity(scalar, replay)
        assert first.wear_leveler.gap_moves == second.wear_leveler.gap_moves
        assert first.wear_leveler.mapping_snapshot() == second.wear_leveler.mapping_snapshot()
        # Stats integers (including the migration writes) agree exactly.
        for key, value in first.stats.as_dict().items():
            if isinstance(value, int):
                assert value == second.stats.as_dict()[key], key

    def test_replay_counters_continue_for_scalar_writes(self):
        """Encryption counters advance identically, so paths can interleave."""
        trace = _trace()
        one = _controller("unencoded", CellTechnology.MLC)
        two = _controller("unencoded", CellTechnology.MLC)
        _drive_scalar(one, trace, repetitions=1)
        two.replay_trace(trace, repetitions=1)
        record = trace[0]
        a = one.write_line(record.address, list(record.words))
        b = two.write_line(record.address, list(record.words))
        assert a == b

    @pytest.mark.parametrize("name", ["unencoded", "rcc"])
    def test_early_stop_leaves_exact_controller_state(self, name):
        """An early-stopped replay leaves counters, reads, and later writes
        exactly where the equivalent scalar write_line sequence would."""
        trace = _trace()
        cut = 3
        scalar = _controller(name, CellTechnology.MLC)
        for record in list(trace)[:cut]:
            scalar.write_line(record.address, list(record.words))
        replayed = _controller(name, CellTechnology.MLC)
        result = replayed.replay_trace(
            trace, repetitions=2, stop=lambda index, row, saw, bits: index == cut - 1
        )
        assert result.writes == cut
        for record in trace:
            address = record.address
            assert scalar.encryption.counter_for(address) == replayed.encryption.counter_for(
                address
            ), address
            assert scalar.read_line(address) == replayed.read_line(address)
        follow_up = trace[0]
        a = scalar.write_line(follow_up.address, list(follow_up.words))
        b = replayed.write_line(follow_up.address, list(follow_up.words))
        assert a == b


class TestReplayControls:
    def test_early_stop_truncates_and_flags(self):
        trace = _trace()
        controller = _controller("unencoded", CellTechnology.MLC)
        replay = controller.replay_trace(
            trace, repetitions=5, stop=lambda index, row, saw, bits: index == 7
        )
        assert replay.writes == 8
        assert replay.stopped_early
        assert len(replay.addresses) == 8
        assert replay.saw_bits_per_word.shape == (8, 8)

    def test_stop_sees_per_write_accounting(self):
        trace = _trace()
        controller = _controller("unencoded", CellTechnology.MLC)
        seen = []
        controller.replay_trace(
            trace,
            repetitions=2,
            stop=lambda index, row, saw, bits: seen.append((index, row, saw)) or False,
        )
        replay_writes = len(seen)
        assert replay_writes == 2 * len(trace)
        assert [entry[0] for entry in seen] == list(range(replay_writes))

    def test_max_writes_caps_partial_repetition(self):
        trace = _trace()
        controller = _controller("rcc", CellTechnology.MLC)
        replay = controller.replay_trace(trace, repetitions=5, max_writes=len(trace) + 3)
        assert replay.writes == len(trace) + 3
        assert not replay.stopped_early

    def test_zero_work_replay(self):
        trace = _trace()
        controller = _controller("unencoded", CellTechnology.MLC)
        replay = controller.replay_trace(trace, repetitions=0)
        assert replay.writes == 0
        assert replay.write_stats().rows_written == 0

    def test_geometry_validated(self):
        controller = _controller("unencoded", CellTechnology.MLC)
        narrow = generate_trace(
            "mcf", num_writebacks=4, memory_lines=ROWS, line_bits=256, word_bits=64, seed=1
        )
        with pytest.raises(ConfigurationError):
            controller.replay_trace(narrow)
        with pytest.raises(ConfigurationError):
            controller.replay_trace(_trace(), repetitions=-1)

    def test_write_stats_matches_line_results(self):
        trace = _trace()
        controller = _controller("rcc", CellTechnology.MLC)
        replay = controller.replay_trace(trace, repetitions=2)
        from repro.pcm.stats import WriteStats

        rebuilt = WriteStats.from_line_results(
            replay.line_results(), controller.config.words_per_line
        )
        batch = replay.write_stats()
        assert rebuilt.rows_written == batch.rows_written
        assert rebuilt.words_written == batch.words_written
        assert rebuilt.bits_changed == batch.bits_changed
        assert rebuilt.cells_changed == batch.cells_changed
        assert rebuilt.saw_cells == batch.saw_cells
        assert rebuilt.saw_words == batch.saw_words
        assert rebuilt.data_energy_pj == pytest.approx(batch.data_energy_pj)
        assert rebuilt.aux_energy_pj == pytest.approx(batch.aux_energy_pj)
