"""Wave-partitioned generic replay: conflicts, gap flushes, batch shapes.

The wave engine of :meth:`MemoryController._replay_generic` batches queued
writes targeting distinct rows into one ``encode_lines`` call.  These
tests pin the scheduling contracts the parity suite alone would not catch
red-handed: a repeated row must split the wave, a Start-Gap migration must
land on a wave's last write, and the batches the encoder sees must follow
exactly those rules.
"""

from typing import List

import numpy as np
import pytest

from repro.coding.registry import make_encoder
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap
from repro.pcm.wearlevel import StartGapWearLeveler
from repro.sim.harness import TechniqueSpec, build_controller
from repro.traces.synthetic import generate_trace
from repro.traces.trace import Trace, WritebackRecord
from repro.utils.rng import make_rng

ROWS = 12


def _conflict_trace(addresses, seed=3):
    """A trace with a hand-picked address sequence and random payloads."""
    rng = make_rng(seed, "wave-conflicts")
    records = [
        WritebackRecord(
            address=int(address),
            words=tuple(int(w) for w in rng.integers(0, 2**62, size=8)),
        )
        for address in addresses
    ]
    return Trace(name="wave-conflicts", records=records, line_bits=512, word_bits=64)


def _controller(name="rcc", seed=3, **kwargs):
    return build_controller(
        TechniqueSpec(encoder=name, cost="saw-then-energy", num_cosets=16),
        rows=ROWS,
        fault_map=FaultMap(
            rows=ROWS, cells_per_row=256, technology=CellTechnology.MLC,
            fault_rate=2e-2, seed=seed,
        ),
        endurance_model=EnduranceModel(mean_writes=25, coefficient_of_variation=0.2),
        seed=seed,
        encrypt=True,
        **kwargs,
    )


def _drive_scalar(controller, trace, repetitions):
    results = []
    for _ in range(repetitions):
        for record in trace:
            results.append(controller.write_line(record.address, list(record.words)))
    return results


def assert_parity(scalar_results, replay):
    assert replay.writes == len(scalar_results)
    for index, line in enumerate(scalar_results):
        assert line.address == replay.addresses[index]
        assert line.row_index == replay.row_indices[index]
        assert line.data_energy_pj == replay.data_energy_pj[index]
        assert line.aux_energy_pj == replay.aux_energy_pj[index]
        assert line.cells_changed == replay.cells_changed[index]
        assert line.bits_changed == replay.bits_changed[index]
        assert line.saw_cells == replay.saw_cells[index]
        assert list(line.saw_bits_per_word) == list(replay.saw_bits_per_word[index])
        assert line.newly_stuck_cells == replay.newly_stuck_cells[index]


def _spy_batches(controller) -> List[int]:
    """Record the line count of every encode_lines call the replay makes."""
    batches: List[int] = []
    original = controller.encoder.encode_lines

    def spy(words_matrix, contexts):
        batches.append(len(contexts))
        return original(words_matrix, contexts)

    controller.encoder.encode_lines = spy
    return batches


class TestRowConflicts:
    def test_same_row_trace_parity(self):
        """Every write hits one row: waves must degrade to single writes."""
        trace = _conflict_trace([5] * 20)
        scalar = _drive_scalar(_controller(), trace, repetitions=2)
        replayed = _controller()
        batches = _spy_batches(replayed)
        replay = replayed.replay_trace(trace, repetitions=2)
        assert_parity(scalar, replay)
        assert batches and all(size == 1 for size in batches)

    def test_rewrite_heavy_trace_parity(self):
        """Adjacent rewrites and aliased addresses split waves correctly."""
        # 3 and 3 + ROWS alias to the same row; back-to-back repeats force
        # one-line waves in between longer runs.
        addresses = [0, 1, 2, 2, 3, 3 + ROWS, 4, 5, 4, 6, 7, 8, 9, 10, 11, 0, 0, 1]
        trace = _conflict_trace(addresses)
        scalar = _drive_scalar(_controller(), trace, repetitions=3)
        replay = _controller().replay_trace(trace, repetitions=3)
        assert_parity(scalar, replay)

    def test_wave_batches_respect_conflicts(self):
        addresses = [0, 1, 2, 3, 1, 4, 5, 6, 7, 8]
        trace = _conflict_trace(addresses)
        controller = _controller()
        batches = _spy_batches(controller)
        controller.replay_trace(trace, repetitions=1)
        # First wave ends before the repeated row 1: [0,1,2,3] then [1,4,...].
        assert batches[0] == 4
        assert sum(batches) == len(addresses)

    def test_distinct_rows_form_one_wave(self):
        addresses = list(range(ROWS))
        trace = _conflict_trace(addresses)
        controller = _controller()
        batches = _spy_batches(controller)
        controller.replay_trace(trace, repetitions=1)
        assert batches[0] == ROWS


class TestWearLevelingWaves:
    @pytest.mark.parametrize("name", ["rcc", "vcc", "bcc"])
    def test_gap_migration_flushes_wave(self, name):
        """With Start-Gap active, waves stop at every gap migration and the
        mapping evolves exactly as in the scalar sequence."""
        trace = generate_trace(
            "mcf", num_writebacks=18, memory_lines=ROWS, line_bits=512,
            word_bits=64, seed=9,
        )

        def build():
            leveler = StartGapWearLeveler(rows=ROWS, gap_write_interval=4)
            array = PCMArray(
                rows=leveler.physical_rows_required,
                row_bits=512,
                technology=CellTechnology.MLC,
                endurance_model=EnduranceModel(mean_writes=30, coefficient_of_variation=0.2),
                seed=11,
            )
            encoder = make_encoder(name, word_bits=64, num_cosets=16,
                                   technology=CellTechnology.MLC)
            return MemoryController(array=array, encoder=encoder, wear_leveler=leveler)

        first = build()
        scalar = _drive_scalar(first, trace, repetitions=3)
        second = build()
        batches = _spy_batches(second)
        replay = second.replay_trace(trace, repetitions=3)
        assert_parity(scalar, replay)
        assert first.wear_leveler.gap_moves == second.wear_leveler.gap_moves
        assert first.wear_leveler.mapping_snapshot() == second.wear_leveler.mapping_snapshot()
        # No wave may span a gap movement: with an interval of 4, batches
        # of more than 4 lines would have carried a migration mid-wave.
        assert batches and max(batches) <= 4

    def test_writes_until_gap_move_counts_down(self):
        leveler = StartGapWearLeveler(rows=4, gap_write_interval=3)
        assert leveler.writes_until_gap_move == 3
        leveler.record_write()
        assert leveler.writes_until_gap_move == 2
        leveler.record_write()
        assert leveler.record_write() is not None  # the move fires here
        assert leveler.writes_until_gap_move == 3


class TestFaultKnowledgeWaves:
    @pytest.mark.parametrize("fault_knowledge", ["oracle", "discovered", "none"])
    def test_coset_encoder_parity(self, fault_knowledge):
        trace = _conflict_trace([0, 1, 2, 3, 4, 2, 5, 6, 0, 7, 8, 9])

        def build():
            array = PCMArray(
                rows=ROWS,
                row_bits=512,
                technology=CellTechnology.MLC,
                fault_map=FaultMap(
                    rows=ROWS, cells_per_row=256, technology=CellTechnology.MLC,
                    fault_rate=2e-2, seed=5,
                ),
                seed=5,
            )
            encoder = make_encoder("rcc", word_bits=64, num_cosets=16,
                                   technology=CellTechnology.MLC)
            return MemoryController(array=array, encoder=encoder,
                                    fault_knowledge=fault_knowledge)

        scalar = _drive_scalar(build(), trace, repetitions=3)
        replay = build().replay_trace(trace, repetitions=3)
        assert_parity(scalar, replay)


class TestStopMidWave:
    def test_stop_inside_a_wave_leaves_exact_state(self):
        """Stopping at write k must not let the wave's later lines land."""
        addresses = list(range(ROWS))
        trace = _conflict_trace(addresses)
        cut = 5  # mid-wave: the first wave would cover all 12 rows
        scalar = _controller()
        for record in list(trace)[:cut]:
            scalar.write_line(record.address, list(record.words))
        replayed = _controller()
        replay = replayed.replay_trace(
            trace, repetitions=2, stop=lambda index, row, saw, bits: index == cut - 1
        )
        assert replay.writes == cut
        assert replay.stopped_early
        for record in trace:
            assert scalar.encryption.counter_for(record.address) == (
                replayed.encryption.counter_for(record.address)
            )
            assert scalar.read_line(record.address) == replayed.read_line(record.address)
        follow_up = trace[0]
        a = scalar.write_line(follow_up.address, list(follow_up.words))
        b = replayed.write_line(follow_up.address, list(follow_up.words))
        assert a == b

    def test_wave_cap_bounds_batches(self):
        addresses = list(range(ROWS))
        trace = _conflict_trace(addresses)
        controller = _controller()
        controller.replay_wave_lines = 3
        batches = _spy_batches(controller)
        replay = controller.replay_trace(trace, repetitions=2)
        assert replay.writes == 2 * ROWS
        assert batches and max(batches) <= 3
        scalar = _drive_scalar(_controller(), trace, repetitions=2)
        assert_parity(scalar, replay)


class TestBatchedArrayHelpers:
    def test_read_rows_matches_read_row(self):
        array = PCMArray(rows=6, row_bits=512, technology=CellTechnology.MLC, seed=1)
        rows = np.array([4, 0, 2])
        gathered = array.read_rows(rows)
        for position, row in enumerate(rows):
            assert np.array_equal(gathered[position], array.read_row(int(row)))
        with pytest.raises(Exception):
            array.read_rows(np.array([0, 6]))

    def test_write_rows_fast_matches_sequential(self):
        def build():
            return PCMArray(
                rows=6, row_bits=512, technology=CellTechnology.MLC,
                endurance_model=EnduranceModel(mean_writes=3, coefficient_of_variation=0.3),
                seed=2,
            )

        rng = make_rng(3, "write-rows")
        rows = np.array([5, 1, 3])
        intended = rng.integers(0, 4, size=(3, 256)).astype(np.uint8)
        sequential = build()
        expected = [sequential.write_row_fast(int(row), intended[k]) for k, row in enumerate(rows)]
        batched_array = build()
        old, stored, changed, saw, newly = batched_array.write_rows_fast(rows, intended)
        for k, (e_old, e_stored, e_changed, e_saw, e_newly) in enumerate(expected):
            assert np.array_equal(old[k], e_old)
            assert np.array_equal(stored[k], e_stored)
            assert np.array_equal(changed[k], e_changed)
            assert np.array_equal(saw[k], e_saw)
            assert newly[k] == e_newly
        assert np.array_equal(batched_array._cells, sequential._cells)
        assert np.array_equal(batched_array._stuck, sequential._stuck)
        assert np.array_equal(batched_array._wear, sequential._wear)
