"""Tests for the memory-controller write/read pipeline."""

import numpy as np
import pytest

from repro.coding.cost import BitChangeCost, EnergyCost, saw_then_energy
from repro.coding.registry import make_encoder
from repro.errors import ConfigurationError
from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap


def _controller(encoder_name="unencoded", rows=16, fault_map=None, endurance=None,
                encrypt=True, cost=None, num_cosets=64, seed=0):
    cost = cost or BitChangeCost()
    encoder = make_encoder(encoder_name, num_cosets=num_cosets, cost_function=cost, seed=seed)
    array = PCMArray(
        rows=rows,
        row_bits=512,
        technology=CellTechnology.MLC,
        fault_map=fault_map,
        endurance_model=endurance,
        seed=seed,
    )
    return MemoryController(
        array=array,
        encoder=encoder,
        config=ControllerConfig(encrypt=encrypt),
    )


def _line(rng):
    return [int(rng.integers(0, 1 << 32)) << 32 | int(rng.integers(0, 1 << 32)) for _ in range(8)]


class TestConfigValidation:
    def test_line_word_geometry(self):
        config = ControllerConfig(line_bits=512, word_bits=64)
        assert config.words_per_line == 8

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(line_bits=500, word_bits=64)

    def test_mismatched_array_rejected(self):
        encoder = make_encoder("unencoded")
        array = PCMArray(rows=4, row_bits=256)
        with pytest.raises(ConfigurationError):
            MemoryController(array=array, encoder=encoder, config=ControllerConfig(line_bits=512))

    def test_mismatched_technology_rejected(self):
        encoder = make_encoder("unencoded", technology=CellTechnology.SLC)
        array = PCMArray(rows=4, row_bits=512, technology=CellTechnology.MLC)
        with pytest.raises(ConfigurationError):
            MemoryController(array=array, encoder=encoder)


class TestWriteReadRoundTrip:
    @pytest.mark.parametrize("encoder_name", ["unencoded", "dbi", "fnw", "flipcy", "rcc", "vcc", "vcc-stored"])
    def test_read_returns_written_plaintext(self, rng, encoder_name):
        controller = _controller(encoder_name)
        plaintext = _line(rng)
        controller.write_line(7, plaintext)
        assert controller.read_line(7) == plaintext

    def test_roundtrip_without_encryption(self, rng):
        controller = _controller("vcc", encrypt=False)
        plaintext = _line(rng)
        controller.write_line(3, plaintext)
        assert controller.read_line(3) == plaintext

    def test_rewrites_update_counter_and_still_decode(self, rng):
        controller = _controller("rcc")
        first, second = _line(rng), _line(rng)
        controller.write_line(5, first)
        controller.write_line(5, second)
        assert controller.read_line(5) == second
        assert controller.encryption.counter_for(5) == 2

    def test_wrong_word_count_rejected(self):
        controller = _controller()
        with pytest.raises(ConfigurationError):
            controller.write_line(0, [1, 2, 3])

    def test_negative_address_rejected(self, rng):
        controller = _controller()
        from repro.errors import MemoryModelError

        with pytest.raises(MemoryModelError):
            controller.write_line(-1, _line(rng))


class TestAccounting:
    def test_stats_accumulate(self, rng):
        controller = _controller()
        for address in range(4):
            controller.write_line(address, _line(rng))
        assert controller.stats.rows_written == 4
        assert controller.stats.words_written == 32
        assert controller.stats.total_energy_pj > 0.0

    def test_energy_matches_manual_computation(self, rng):
        controller = _controller("unencoded", encrypt=False)
        plaintext = _line(rng)
        row = controller.row_for_address(2)
        old = controller.array.read_row(row).copy()
        result = controller.write_line(2, plaintext)
        lut = controller.mlc_energy.lut()
        new = controller.array.read_row(row)
        # Unencoded, no faults: intended == stored.
        expected = lut[old.astype(int), new.astype(int)].sum()
        assert result.data_energy_pj == pytest.approx(expected)

    def test_encoded_write_spends_less_energy(self, rng):
        cost = EnergyCost(CellTechnology.MLC)
        plain = _controller("unencoded", cost=BitChangeCost(), seed=3)
        vcc = _controller("vcc", cost=cost, num_cosets=256, seed=3)
        for address in range(8):
            line = _line(rng)
            plain.write_line(address, line)
            vcc.write_line(address, line)
        assert vcc.stats.total_energy_pj < plain.stats.total_energy_pj

    def test_aux_energy_charged_for_coset_techniques(self, rng):
        controller = _controller("rcc")
        controller.write_line(0, _line(rng))
        assert controller.stats.aux_energy_pj > 0.0

    def test_unencoded_has_no_aux_energy(self, rng):
        controller = _controller("unencoded")
        controller.write_line(0, _line(rng))
        assert controller.stats.aux_energy_pj == 0.0


class TestFaultHandling:
    def test_saw_reported_with_faults(self, rng):
        fault_map = FaultMap(rows=16, cells_per_row=256, fault_rate=0.05, seed=2)
        controller = _controller("unencoded", fault_map=fault_map)
        total_saw = 0
        for address in range(16):
            result = controller.write_line(address, _line(rng))
            total_saw += result.saw_cells
        assert total_saw > 0
        assert controller.stats.saw_cells == total_saw

    def test_saw_aware_encoding_reduces_saw(self, rng):
        fault_map = FaultMap(rows=16, cells_per_row=256, fault_rate=0.02, seed=4)
        plain = _controller("unencoded", fault_map=fault_map, cost=saw_then_energy(), seed=5)
        vcc = _controller("vcc-stored", fault_map=fault_map, cost=saw_then_energy(),
                          num_cosets=256, seed=5)
        for address in range(16):
            line = _line(rng)
            plain.write_line(address, line)
            vcc.write_line(address, line)
        assert vcc.stats.saw_cells < plain.stats.saw_cells

    def test_fault_context_can_be_disabled(self, rng):
        fault_map = FaultMap(rows=16, cells_per_row=256, fault_rate=0.05, seed=6)
        encoder = make_encoder("vcc-stored", num_cosets=64, cost_function=saw_then_energy())
        array = PCMArray(rows=16, row_bits=512, fault_map=fault_map, seed=6)
        controller = MemoryController(array=array, encoder=encoder, use_fault_context=False)
        result = controller.write_line(0, _line(rng))
        assert result.saw_cells >= 0  # runs without fault knowledge

    def test_newly_stuck_counted_in_lifetime_mode(self, rng):
        endurance = EnduranceModel(mean_writes=2, coefficient_of_variation=0.0)
        controller = _controller("unencoded", endurance=endurance)
        newly_stuck = 0
        for _ in range(6):
            result = controller.write_line(0, _line(rng))
            newly_stuck += result.newly_stuck_cells
        assert newly_stuck > 0

    def test_saw_bits_per_word_length(self, rng):
        controller = _controller()
        result = controller.write_line(0, _line(rng))
        assert len(result.saw_bits_per_word) == 8
