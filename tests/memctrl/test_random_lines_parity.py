"""Bit-identity of the batched random-line driver against the scalar path.

The contract of
:meth:`repro.memctrl.controller.MemoryController.write_random_lines` is
that every per-write accounting value — and the controller state left
behind — equals what the scalar ``write_line`` loop over the identical
seeded random stream produces, for every registry encoder, both cell
technologies, with faults, wear, encryption, and wear leveling in play.
The scalar loop (:func:`repro.sim.harness.drive_random_lines_scalar`'s
body) is the oracle.
"""

import numpy as np
import pytest

from repro.coding.registry import available_encoders, make_encoder
from repro.errors import ConfigurationError
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap
from repro.pcm.wearlevel import StartGapWearLeveler
from repro.sim.harness import TechniqueSpec, build_controller, scalar_random_line_results
from repro.utils.rng import make_rng

ROWS = 16
LINES = 24
SEED = 9


def _controller(name, technology, seed=SEED):
    return build_controller(
        TechniqueSpec(encoder=name, cost="saw-then-energy", num_cosets=16),
        rows=ROWS,
        technology=technology,
        fault_map=FaultMap(
            rows=ROWS,
            cells_per_row=512 // technology.bits_per_cell,
            technology=technology,
            fault_rate=1e-2,
            seed=seed,
        ),
        endurance_model=EnduranceModel(mean_writes=30, coefficient_of_variation=0.2),
        seed=seed,
        encrypt=True,
    )


def _drive_scalar(controller, num_lines, seed=SEED, address_space=None):
    """The oracle loop: the harness's single-source scalar write_line loop."""
    return scalar_random_line_results(
        controller, num_lines, address_space=address_space, seed=seed
    )


def _drive_batched(controller, num_lines, seed=SEED, address_space=None):
    rng = make_rng(seed, "random-lines")
    return controller.write_random_lines(num_lines, rng, address_space=address_space)


def assert_parity(scalar_results, replay):
    assert replay.writes == len(scalar_results)
    for index, line in enumerate(scalar_results):
        assert line.address == replay.addresses[index]
        assert line.row_index == replay.row_indices[index]
        assert line.data_energy_pj == replay.data_energy_pj[index]
        assert line.aux_energy_pj == replay.aux_energy_pj[index]
        assert line.cells_changed == replay.cells_changed[index]
        assert line.bits_changed == replay.bits_changed[index]
        assert line.saw_cells == replay.saw_cells[index]
        assert list(line.saw_bits_per_word) == list(replay.saw_bits_per_word[index])
        assert line.newly_stuck_cells == replay.newly_stuck_cells[index]


class TestRandomLinesParity:
    @pytest.mark.parametrize("name", available_encoders())
    @pytest.mark.parametrize("technology", [CellTechnology.MLC, CellTechnology.SLC])
    def test_registry_encoder_parity(self, name, technology):
        """Batched accounting is bit-identical to write_line for every encoder."""
        scalar = _drive_scalar(_controller(name, technology), LINES)
        replay = _drive_batched(_controller(name, technology), LINES)
        assert_parity(scalar, replay)

    @pytest.mark.parametrize("name", ["unencoded", "rcc"])
    def test_parity_without_encryption(self, name):
        def build():
            return build_controller(
                TechniqueSpec(encoder=name, cost="saw-then-energy", num_cosets=16),
                rows=ROWS,
                seed=3,
                encrypt=False,
            )

        scalar = _drive_scalar(build(), LINES)
        replay = _drive_batched(build(), LINES)
        assert_parity(scalar, replay)

    @pytest.mark.parametrize("fault_knowledge", ["oracle", "discovered", "none"])
    def test_parity_across_fault_knowledge_modes(self, fault_knowledge):
        def build():
            technology = CellTechnology.MLC
            array = PCMArray(
                rows=ROWS,
                row_bits=512,
                technology=technology,
                fault_map=FaultMap(
                    rows=ROWS, cells_per_row=256, technology=technology, fault_rate=1e-2, seed=5
                ),
                seed=5,
            )
            encoder = make_encoder("unencoded", word_bits=64, technology=technology)
            return MemoryController(
                array=array, encoder=encoder, fault_knowledge=fault_knowledge
            )

        scalar = _drive_scalar(build(), 3 * LINES)
        replay = _drive_batched(build(), 3 * LINES)
        assert_parity(scalar, replay)

    @pytest.mark.parametrize("name", ["unencoded", "dbi"])
    def test_parity_with_wear_leveling(self, name):
        """Start-Gap migrations happen at identical points on both paths."""

        def build():
            technology = CellTechnology.MLC
            leveler = StartGapWearLeveler(rows=ROWS, gap_write_interval=5)
            array = PCMArray(
                rows=leveler.physical_rows_required,
                row_bits=512,
                technology=technology,
                endurance_model=EnduranceModel(mean_writes=40, coefficient_of_variation=0.2),
                seed=7,
            )
            encoder = make_encoder(name, word_bits=64, technology=technology)
            return MemoryController(array=array, encoder=encoder, wear_leveler=leveler)

        first = build()
        scalar = _drive_scalar(first, 3 * LINES)
        second = build()
        replay = _drive_batched(second, 3 * LINES)
        assert_parity(scalar, replay)
        assert first.wear_leveler.gap_moves == second.wear_leveler.gap_moves
        assert first.wear_leveler.mapping_snapshot() == second.wear_leveler.mapping_snapshot()
        # Stats integers (including the migration writes) agree exactly.
        for key, value in first.stats.as_dict().items():
            if isinstance(value, int):
                assert value == second.stats.as_dict()[key], key

    def test_counters_continue_for_scalar_writes(self):
        """Encryption counters advance identically, so paths can interleave."""
        one = _controller("unencoded", CellTechnology.MLC)
        two = _controller("unencoded", CellTechnology.MLC)
        _drive_scalar(one, LINES)
        _drive_batched(two, LINES)
        words = [0x0123456789ABCDEF] * one.config.words_per_line
        a = one.write_line(5, words)
        b = two.write_line(5, words)
        assert a == b
        for address in range(ROWS):
            assert one.encryption.counter_for(address) == two.encryption.counter_for(address)
            assert one.read_line(address) == two.read_line(address)

    def test_address_space_honoured(self):
        """Addresses come from [0, address_space), same stream as the oracle."""
        scalar = _drive_scalar(
            _controller("unencoded", CellTechnology.MLC), LINES, address_space=4
        )
        replay = _drive_batched(
            _controller("unencoded", CellTechnology.MLC), LINES, address_space=4
        )
        assert_parity(scalar, replay)
        assert int(replay.addresses.max()) < 4

    @pytest.mark.parametrize("word_bits", [16, 32])
    def test_parity_for_narrow_words(self, word_bits):
        """Non-64-bit geometries draw the identical random stream."""

        def build():
            return build_controller(
                TechniqueSpec(encoder="unencoded", cost="saw-then-energy"),
                rows=ROWS,
                word_bits=word_bits,
                line_bits=256,
                seed=4,
                encrypt=True,
            )

        scalar = _drive_scalar(build(), LINES, seed=4)
        replay = _drive_batched(build(), LINES, seed=4)
        assert_parity(scalar, replay)


class TestRandomLinesControls:
    def test_zero_lines(self):
        controller = _controller("unencoded", CellTechnology.MLC)
        replay = _drive_batched(controller, 0)
        assert replay.writes == 0
        assert replay.write_stats().rows_written == 0
        assert controller.stats.rows_written == 0

    def test_negative_lines_rejected(self):
        controller = _controller("unencoded", CellTechnology.MLC)
        with pytest.raises(ConfigurationError):
            controller.write_random_lines(-1, make_rng(1, "x"))

    def test_bad_address_space_rejected(self):
        controller = _controller("unencoded", CellTechnology.MLC)
        with pytest.raises(ConfigurationError):
            controller.write_random_lines(4, make_rng(1, "x"), address_space=0)

    def test_stats_absorbed_once(self):
        controller = _controller("unencoded", CellTechnology.MLC)
        replay = _drive_batched(controller, LINES)
        assert controller.stats.rows_written == LINES
        assert controller.stats.saw_cells == int(replay.saw_cells.sum())

    def test_spans_multiple_chunks(self):
        """Drives longer than the first chunk stay on the shared stream."""
        total = 700  # the first chunk covers 512 writes
        scalar = _drive_scalar(
            _controller("unencoded", CellTechnology.MLC, seed=2), total, seed=2
        )
        replay = _drive_batched(
            _controller("unencoded", CellTechnology.MLC, seed=2), total, seed=2
        )
        assert_parity(scalar, replay)
