"""End-to-end integration tests across the whole stack.

These tests exercise the complete pipeline the paper describes — workload
trace -> counter-mode encryption -> coset encoding -> PCM array with faults
and wear -> decode -> decrypt — and check the system-level invariants that
individual unit tests cannot see.
"""

import numpy as np
import pytest

from repro.coding.cost import energy_then_saw, saw_then_energy
from repro.coding.registry import make_encoder
from repro.memctrl.config import ControllerConfig
from repro.memctrl.controller import MemoryController
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap
from repro.sim.harness import TechniqueSpec, build_controller, drive_trace
from repro.traces.synthetic import generate_trace


class TestFullPipelineRoundTrip:
    @pytest.mark.parametrize("encoder_name", ["unencoded", "dbi/fnw", "flipcy", "rcc", "vcc", "vcc-stored"])
    def test_trace_written_and_read_back(self, encoder_name):
        rows = 32
        trace = generate_trace("mcf", 40, memory_lines=rows, seed=1)
        controller = build_controller(
            TechniqueSpec(encoder=encoder_name, cost="energy-then-saw", num_cosets=64),
            rows=rows,
            seed=1,
        )
        last_written = {}
        for record in trace:
            controller.write_line(record.address, list(record.words))
            last_written[record.address] = list(record.words)
        # Without faults, every line must read back exactly (after decode +
        # decrypt), regardless of the technique.
        for address, words in last_written.items():
            assert controller.read_line(address) == words

    def test_faulty_memory_corrupts_unprotected_reads_but_vcc_heals_most(self):
        rows = 32
        fault_map = FaultMap(rows=rows, cells_per_row=256, fault_rate=5e-3, seed=3)
        trace = generate_trace("lbm", 60, memory_lines=rows, seed=3)

        def corrupted_words(encoder_name):
            controller = build_controller(
                TechniqueSpec(encoder=encoder_name, cost="saw-then-energy", num_cosets=256),
                rows=rows,
                fault_map=fault_map,
                seed=3,
            )
            last_written = {}
            for record in trace:
                controller.write_line(record.address, list(record.words))
                last_written[record.address] = list(record.words)
            wrong = 0
            for address, words in last_written.items():
                read_back = controller.read_line(address)
                wrong += sum(1 for a, b in zip(read_back, words) if a != b)
            return wrong

        unprotected = corrupted_words("unencoded")
        vcc = corrupted_words("vcc-stored")
        assert unprotected > 0
        assert vcc < unprotected * 0.3


class TestEncryptionInteraction:
    def test_encrypted_data_is_unbiased_even_for_biased_workloads(self):
        rows = 32
        trace = generate_trace("deepsjeng", 50, memory_lines=rows, seed=5)
        encoder = make_encoder("unencoded")
        array = PCMArray(rows=rows, row_bits=512, seed=5)
        controller = MemoryController(array=array, encoder=encoder, config=ControllerConfig())
        ones = 0
        total = 0
        for record in trace:
            encrypted = controller.encryption.encrypt_line(record.address, list(record.words))
            for word in encrypted.words:
                ones += bin(word).count("1")
                total += 64
        assert 0.47 < ones / total < 0.53

    def test_plaintext_of_same_workload_is_biased(self):
        trace = generate_trace("deepsjeng", 50, memory_lines=32, seed=5)
        ones = sum(bin(w).count("1") for record in trace for w in record.words)
        total = sum(64 for record in trace for _ in record.words)
        assert ones / total < 0.42


class TestCostFunctionConsistency:
    def test_opt_energy_and_opt_saw_agree_on_energy_scale(self):
        # Section VI-B: switching the lexicographic order barely changes the
        # achieved energy saving.
        rows = 24
        fault_map = FaultMap(rows=rows, cells_per_row=256, fault_rate=1e-2, seed=7)
        trace = generate_trace("fotonik3d", 40, memory_lines=rows, seed=7)
        energies = {}
        for label, cost in (("energy-first", "energy-then-saw"), ("saw-first", "saw-then-energy")):
            controller = build_controller(
                TechniqueSpec(encoder="vcc", cost=cost, num_cosets=256),
                rows=rows,
                fault_map=fault_map,
                seed=7,
            )
            drive_trace(controller, trace)
            energies[label] = controller.stats.total_energy_pj
        ratio = energies["saw-first"] / energies["energy-first"]
        assert 0.9 < ratio < 1.35

    def test_saw_first_never_masks_fewer_faults(self):
        rows = 24
        fault_map = FaultMap(rows=rows, cells_per_row=256, fault_rate=1e-2, seed=8)
        trace = generate_trace("bwaves", 40, memory_lines=rows, seed=8)
        saw = {}
        for label, cost in (("energy-first", "energy-then-saw"), ("saw-first", "saw-then-energy")):
            controller = build_controller(
                TechniqueSpec(encoder="vcc-stored", cost=cost, num_cosets=256),
                rows=rows,
                fault_map=fault_map,
                seed=8,
            )
            drive_trace(controller, trace)
            saw[label] = controller.stats.saw_cells
        assert saw["saw-first"] <= saw["energy-first"]
