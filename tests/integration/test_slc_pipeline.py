"""Integration tests for the SLC (single-level cell) path.

The paper's contribution list covers "reducing write energy in SLC and MLC
phase-change memory"; most of the evaluation targets MLC, but every layer
of this repository also supports SLC (1 bit per cell, asymmetric SET/RESET
energies).  These tests drive the full pipeline in SLC mode.
"""

import pytest

from repro.coding.registry import make_encoder
from repro.coding.base import WordContext
from repro.coding.cost import BitChangeCost, EnergyCost
from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap
from repro.sim.harness import TechniqueSpec, build_controller, drive_random_lines
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng


class TestSLCEncoders:
    @pytest.mark.parametrize("name", ["unencoded", "dbi", "fnw", "flipcy", "bcc", "rcc", "vcc", "vcc-stored"])
    def test_roundtrip(self, name, rng):
        encoder = make_encoder(name, num_cosets=32, technology=CellTechnology.SLC)
        data = int(rng.integers(0, 1 << 63))
        context = WordContext.from_word(int(rng.integers(0, 1 << 63)), 64, 1)
        encoded = encoder.encode(data, context)
        assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_slc_vcc_uses_full_word(self):
        encoder = make_encoder("vcc", num_cosets=64, technology=CellTechnology.SLC)
        from repro.core.config import EncodeRegion

        assert encoder.config.encode_region is EncodeRegion.FULL_WORD

    def test_vcc_reduces_slc_bit_changes(self, rng):
        cost = BitChangeCost()
        vcc = make_encoder("vcc", num_cosets=256, technology=CellTechnology.SLC, cost_function=cost)
        total_plain = 0.0
        total_vcc = 0.0
        for _ in range(30):
            data = random_word(rng, 64)
            old = random_word(rng, 64)
            context = WordContext.from_word(old, 64, 1)
            encoded = vcc.encode(data, context)
            total_plain += bin(data ^ old).count("1")
            total_vcc += bin(encoded.codeword ^ old).count("1")
        assert total_vcc < total_plain * 0.85

    def test_slc_energy_cost_prefers_cheap_direction(self, rng):
        # RESET (writing 0) is costlier than SET in the default SLC model,
        # so an energy-optimised encoder writes fewer expensive transitions
        # than an unencoded write on average.
        cost = EnergyCost(CellTechnology.SLC)
        vcc = make_encoder("vcc", num_cosets=256, technology=CellTechnology.SLC, cost_function=cost)
        from repro.pcm.energy import SLCEnergyModel

        model = SLCEnergyModel()
        plain_energy = 0.0
        vcc_energy = 0.0
        for _ in range(30):
            data = random_word(rng, 64)
            old = random_word(rng, 64)
            context = WordContext.from_word(old, 64, 1)
            encoded = vcc.encode(data, context)
            plain_energy += model.word_energy(old, data)
            vcc_energy += model.word_energy(old, encoded.codeword)
        assert vcc_energy < plain_energy * 0.85


class TestSLCController:
    def test_full_pipeline_roundtrip(self, rng):
        controller = build_controller(
            TechniqueSpec(encoder="vcc", cost="energy", num_cosets=64),
            rows=8,
            technology=CellTechnology.SLC,
            seed=3,
        )
        words = [random_word(rng, 64) for _ in range(8)]
        controller.write_line(2, words)
        assert controller.read_line(2) == words

    def test_slc_fault_snapshot(self, rng):
        fault_map = FaultMap(
            rows=8, cells_per_row=512, technology=CellTechnology.SLC, fault_rate=0.02, seed=4
        )
        controller = build_controller(
            TechniqueSpec(encoder="vcc", cost="saw-then-energy", num_cosets=256),
            rows=8,
            technology=CellTechnology.SLC,
            fault_map=fault_map,
            seed=4,
        )
        unencoded = build_controller(
            TechniqueSpec(encoder="unencoded", cost="saw-then-energy"),
            rows=8,
            technology=CellTechnology.SLC,
            fault_map=fault_map,
            seed=4,
        )
        drive_random_lines(controller, 16, seed=4)
        drive_random_lines(unencoded, 16, seed=4)
        # For SLC the full-word VCC can flip any stuck bit to its stuck
        # value, so SAW drops dramatically versus the unencoded write.
        assert controller.stats.saw_cells < unencoded.stats.saw_cells * 0.4
