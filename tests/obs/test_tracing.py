"""Unit tests for the repro.obs span tracer."""

import json
import os

import pytest

from repro import obs
from repro.obs.tracing import _NULL_SPAN, TRACE_ENV_VAR


@pytest.fixture
def trace(tmp_path):
    """Enable tracing to a temp file; yields the path, always disables."""
    path = tmp_path / "trace.jsonl"
    obs.enable_tracing(str(path))
    try:
        yield path
    finally:
        obs.disable_tracing()


def read_events(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


class TestDisabledMode:
    def test_off_by_default(self):
        assert not obs.tracing_enabled()
        assert obs.trace_path() is None

    def test_disabled_span_is_shared_noop(self):
        first = obs.span("a", lines=3)
        second = obs.span("b")
        assert first is _NULL_SPAN and second is _NULL_SPAN
        with first as open_span:
            open_span.set(ignored=True)

    def test_disabled_emit_span_is_noop(self, tmp_path):
        obs.emit_span("x", 0.0, 1.0)  # must not raise or write anywhere


class TestEnabledMode:
    def test_enable_sets_env_var_for_spawned_workers(self, trace):
        assert obs.tracing_enabled()
        assert os.environ[TRACE_ENV_VAR] == str(trace)

    def test_disable_clears_env_var(self, tmp_path):
        obs.enable_tracing(str(tmp_path / "t.jsonl"))
        obs.disable_tracing()
        assert TRACE_ENV_VAR not in os.environ
        assert not obs.tracing_enabled()

    def test_span_records_event_with_attrs(self, trace):
        with obs.span("unit.test", lines=4) as open_span:
            open_span.set(extra="yes")
        (event,) = read_events(trace)
        assert event["name"] == "unit.test"
        assert event["pid"] == os.getpid()
        assert event["attrs"] == {"lines": 4, "extra": "yes"}
        assert event["end_s"] >= event["start_s"]
        assert event["parent"] is None

    def test_spans_nest_parent_child(self, trace):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("sibling"):
                pass
        events = {e["name"]: e for e in read_events(trace)}
        assert events["inner"]["parent"] == events["outer"]["span"]
        assert events["sibling"]["parent"] == events["outer"]["span"]
        assert events["outer"]["parent"] is None
        # children close (and are written) before the parent
        names = [e["name"] for e in read_events(trace)]
        assert names.index("inner") < names.index("outer")

    def test_span_records_error_type(self, trace):
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (event,) = read_events(trace)
        assert event["error"] == "ValueError"

    def test_emit_span_parents_under_open_span(self, trace):
        with obs.span("outer"):
            obs.emit_span("measured", 1.0, 2.5, cached=True)
        events = {e["name"]: e for e in read_events(trace)}
        assert events["measured"]["parent"] == events["outer"]["span"]
        assert events["measured"]["start_s"] == 1.0
        assert events["measured"]["end_s"] == 2.5
        assert events["measured"]["attrs"] == {"cached": True}

    def test_events_append_across_enable_cycles(self, trace):
        with obs.span("first"):
            pass
        obs.disable_tracing()
        obs.enable_tracing(str(trace))
        with obs.span("second"):
            pass
        assert [e["name"] for e in read_events(trace)] == ["first", "second"]

    def test_env_var_alone_enables_tracing(self, tmp_path, monkeypatch):
        # Spawned workers configure themselves from REPRO_TRACE only.
        path = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv(TRACE_ENV_VAR, str(path))
        assert obs.tracing_enabled()
        with obs.span("from-env"):
            pass
        assert [e["name"] for e in read_events(path)] == ["from-env"]
