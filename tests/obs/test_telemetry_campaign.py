"""Integration: telemetry must observe campaigns without perturbing them."""

import json
import os

import pytest

from repro import obs
from repro.campaign import SweepSpec, last_campaign_telemetry, run_campaign


def fig7_spec():
    """A small fig7-sized grid: 2 coset counts x 2 seeds = 4 tasks."""
    return SweepSpec(
        kind="fig7-energy-cell",
        base={
            "rows": 32,
            "word_bits": 64,
            "line_bits": 512,
            "num_writes": 40,
            "technology": "mlc",
            "encoder": "rcc",
            "cost": "energy-then-saw",
            "label": "RCC",
        },
        grid={"cosets": [4, 8]},
        seeds=(3, 4),
    )


def run_traced(tmp_path, name, jobs):
    trace = tmp_path / f"{name}.jsonl"
    obs.enable_tracing(str(trace))
    try:
        result = run_campaign(fig7_spec(), store=None, jobs=jobs)
    finally:
        obs.disable_tracing()
    return result, obs.load_trace(trace)


class TestResultsUnperturbed:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_rows_bit_identical_with_tracing(self, tmp_path, jobs):
        baseline = run_campaign(fig7_spec(), store=None, jobs=1)
        traced, events = run_traced(tmp_path, f"jobs{jobs}", jobs)
        assert traced.rows() == baseline.rows()
        assert events, "tracing was enabled but produced no events"

    def test_rows_bit_identical_without_tracing_across_jobs(self):
        serial = run_campaign(fig7_spec(), store=None, jobs=1)
        parallel = run_campaign(fig7_spec(), store=None, jobs=4)
        assert parallel.rows() == serial.rows()


class TestSpansAcrossWorkers:
    def test_trace_covers_coordinator_and_workers(self, tmp_path):
        _, events = run_traced(tmp_path, "workers", 2)
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        # the coordinator records the run and one span per task
        assert len(by_name["campaign.run"]) == 1
        assert len(by_name["campaign.task"]) == 4
        # hot-path spans from inside the worker processes made it into
        # the same file (O_APPEND keeps concurrent lines whole)
        assert "replay.wave" in by_name
        worker_pids = {e["pid"] for e in by_name["replay.wave"]}
        coordinator_pid = by_name["campaign.run"][0]["pid"]
        assert worker_pids and coordinator_pid not in worker_pids

    def test_task_spans_nest_under_run_span(self, tmp_path):
        _, events = run_traced(tmp_path, "nesting", 2)
        run_event = next(e for e in events if e["name"] == "campaign.run")
        tasks = [e for e in events if e["name"] == "campaign.task"]
        assert all(e["parent"] == run_event["span"] for e in tasks)
        assert all(not e["attrs"]["cached"] for e in tasks)

    def test_worker_metrics_survive_aggregation(self, tmp_path):
        obs.reset_metrics()
        run_traced(tmp_path, "metrics", 2)
        # worker-side increments were merged into this process's registry
        snapshot = obs.metrics_snapshot()
        assert snapshot["replay.waves"]["value"] > 0
        assert snapshot["encode.candidates"]["value"] > 0
        telemetry = last_campaign_telemetry()
        assert telemetry is not None
        assert telemetry.metrics.get("replay.waves", {}).get("value", 0) > 0


class TestPhaseAccounting:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_phases_explain_task_wall_time(self, tmp_path, jobs):
        _, events = run_traced(tmp_path, f"phases{jobs}", jobs)
        executor = obs.build_report(events)["executor"]
        assert executor["tasks"] == 4
        # acceptance floor: the four phases explain >=90% of measured
        # task wall time (they tile it exactly by construction)
        assert executor["coverage_fraction"] >= 0.90
        assert 0.0 <= executor["overhead_fraction"] <= 1.0

    def test_serial_run_is_pure_compute(self, tmp_path):
        _, events = run_traced(tmp_path, "serial", 1)
        executor = obs.build_report(events)["executor"]
        phases = executor["phases_s"]
        assert phases["queue_wait_s"] == 0.0
        assert phases["dispatch_s"] == 0.0
        assert phases["transfer_s"] == 0.0
        assert phases["compute_s"] > 0.0

    def test_campaign_telemetry_summary_mentions_overhead(self, tmp_path):
        run_traced(tmp_path, "summary", 2)
        telemetry = last_campaign_telemetry()
        assert telemetry is not None
        assert "executor overhead" in telemetry.summary()
        assert telemetry.wall_s > 0.0
        assert telemetry.compute_s > 0.0
