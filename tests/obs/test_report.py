"""Unit tests for the trace report rollup and its CLI."""

import io
import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.cli import main as obs_main


def event(name, start, end, span="1:1", parent=None, pid=1, attrs=None, error=None):
    payload = {
        "name": name,
        "pid": pid,
        "span": span,
        "parent": parent,
        "start_s": start,
        "end_s": end,
    }
    if attrs:
        payload["attrs"] = attrs
    if error:
        payload["error"] = error
    return payload


def task_event(span, start, end, **phases):
    attrs = {"task": span, "cached": False}
    attrs.update(phases)
    return event("campaign.task", start, end, span=span, attrs=attrs)


class TestLoadTrace:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = [event("a", 0.0, 1.0), event("b", 1.0, 2.0, span="1:2")]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert obs.load_trace(str(path)) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(event("a", 0.0, 1.0)) + "\n\n")
        assert len(obs.load_trace(str(path))) == 1

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError, match="not a JSON trace event"):
            obs.load_trace(str(path))

    def test_non_event_object_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"no_name": 1}\n')
        with pytest.raises(ConfigurationError, match="must be an object with a name"):
            obs.load_trace(str(path))


class TestBuildReport:
    def test_self_time_subtracts_children(self):
        events = [
            event("child", 1.0, 3.0, span="1:2", parent="1:1"),
            event("parent", 0.0, 4.0, span="1:1"),
        ]
        report = obs.build_report(events)
        spans = {entry["name"]: entry for entry in report["spans"]}
        assert spans["parent"]["total_s"] == pytest.approx(4.0)
        assert spans["parent"]["self_s"] == pytest.approx(2.0)
        assert spans["child"]["self_s"] == pytest.approx(2.0)
        # ranked by self-time: tie here, then by name
        assert [e["name"] for e in report["spans"]] == ["child", "parent"]

    def test_wall_and_processes(self):
        events = [
            event("a", 0.0, 1.0, pid=1),
            event("b", 2.0, 5.0, span="2:1", pid=2),
        ]
        report = obs.build_report(events)
        assert report["processes"] == 2
        assert report["wall_s"] == pytest.approx(5.0)

    def test_executor_phases_tile_task_wall(self):
        events = [
            task_event(
                "1:1", 0.0, 1.0,
                queue_wait_s=0.3, dispatch_s=0.1, compute_s=0.5, transfer_s=0.1,
            ),
            task_event(
                "1:2", 1.0, 2.0,
                queue_wait_s=0.1, dispatch_s=0.1, compute_s=0.7, transfer_s=0.1,
            ),
        ]
        executor = obs.build_report(events)["executor"]
        assert executor["tasks"] == 2
        assert executor["coverage_fraction"] == pytest.approx(1.0)
        # overhead = everything but compute = (0.5 + 0.3) / 2.0
        assert executor["overhead_fraction"] == pytest.approx(0.4)

    def test_cached_tasks_counted_but_not_phased(self):
        events = [
            task_event(
                "1:1", 0.0, 1.0,
                queue_wait_s=0.0, dispatch_s=0.0, compute_s=1.0, transfer_s=0.0,
            ),
            event("campaign.task", 1.0, 1.1, span="1:2", attrs={"cached": True}),
        ]
        executor = obs.build_report(events)["executor"]
        assert executor["tasks"] == 1
        assert executor["cached"] == 1
        assert executor["wall_s"] == pytest.approx(1.0)

    def test_no_tasks_no_executor_section(self):
        report = obs.build_report([event("a", 0.0, 1.0)])
        assert "executor" not in report


class TestRenderText:
    def test_contains_ci_asserted_lines(self):
        events = [
            task_event(
                "1:1", 0.0, 1.0,
                queue_wait_s=0.2, dispatch_s=0.1, compute_s=0.6, transfer_s=0.1,
            ),
        ]
        stream = io.StringIO()
        obs.render_text(obs.build_report(events), stream)
        text = stream.getvalue()
        assert "executor overhead: 40.0% of task wall time spent outside compute" in text
        assert "phase coverage: 100.0% of measured task wall time" in text
        assert "top spans by self-time" in text


class TestCli:
    def _trace_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = [
            task_event(
                "1:1", 0.0, 1.0,
                queue_wait_s=0.2, dispatch_s=0.1, compute_s=0.6, transfer_s=0.1,
            ),
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return path

    def test_report_text(self, tmp_path, capsys):
        assert obs_main(["report", str(self._trace_file(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "executor overhead:" in out
        assert "phase coverage:" in out

    def test_report_json(self, tmp_path, capsys):
        assert obs_main(["report", str(self._trace_file(tmp_path)), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"]["tasks"] == 1

    def test_missing_trace_exits_2(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_glossary_lists_hot_path_counters(self, capsys):
        assert obs_main(["metrics"]) == 0
        out = capsys.readouterr().out
        for name in ("replay.waves", "encode.candidates", "crypto.pad_chunks", "store.get_s"):
            assert name in out
