"""Unit tests for the repro.obs metric registry."""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("c", "a counter")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_snapshot_payload(self, registry):
        c = registry.counter("c", "a counter")
        c.inc(3)
        assert c.to_snapshot() == {"kind": "counter", "value": 3}

    def test_merge_adds(self, registry):
        c = registry.counter("c", "a counter")
        c.inc(2)
        c.merge({"kind": "counter", "value": 7})
        assert c.value == 9

    def test_reset(self, registry):
        c = registry.counter("c", "a counter")
        c.inc(4)
        c.reset()
        assert c.value == 0
        assert c.is_zero()


class TestGauge:
    def test_set_and_snapshot(self, registry):
        g = registry.gauge("g", "a gauge")
        assert g.is_zero()
        g.set(2.5)
        assert g.to_snapshot() == {"kind": "gauge", "value": 2.5}

    def test_merge_takes_incoming_value(self, registry):
        g = registry.gauge("g", "a gauge")
        g.set(1.0)
        g.merge({"kind": "gauge", "value": 3.0})
        assert g.value == 3.0
        g.merge({"kind": "gauge", "value": None})
        assert g.value == 3.0


class TestHistogram:
    def test_observe_accumulates(self, registry):
        h = registry.histogram("h", "a histogram")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = h.to_snapshot()
        assert snap["kind"] == "histogram"
        assert snap["count"] == 3
        assert snap["total"] == 6.0
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0

    def test_merge_combines_extremes(self, registry):
        h = registry.histogram("h", "a histogram")
        h.observe(5.0)
        h.merge({"kind": "histogram", "count": 2, "total": 3.0, "min": 1.0, "max": 2.0})
        snap = h.to_snapshot()
        assert snap["count"] == 3
        assert snap["total"] == 8.0
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0


class TestRegistry:
    def test_get_or_create_returns_same_handle(self, registry):
        a = registry.counter("x", "first")
        b = registry.counter("x", "first")
        assert a is b

    def test_kind_conflict_raises(self, registry):
        registry.counter("x", "a counter")
        with pytest.raises(ConfigurationError):
            registry.gauge("x", "now a gauge")

    def test_snapshot_skips_zero_by_default(self, registry):
        registry.counter("zero", "never bumped")
        registry.counter("hot", "bumped").inc()
        snap = registry.snapshot()
        assert "hot" in snap and "zero" not in snap
        full = registry.snapshot(include_zero=True)
        assert "zero" in full

    def test_merge_doubles_and_creates_unknown(self, registry):
        registry.counter("c", "a counter").inc(3)
        snap = registry.snapshot()
        registry.merge(snap)
        assert registry.get("c").value == 6
        other = MetricsRegistry()
        other.merge(snap)
        assert other.get("c").value == 3

    def test_reset_clears_everything(self, registry):
        registry.counter("c", "a counter").inc()
        registry.histogram("h", "a histogram").observe(1.0)
        registry.reset()
        assert registry.snapshot() == {}
        # handles stay registered (names survive a reset)
        assert "c" in registry.names()


class TestModuleLevelApi:
    def test_global_registry_roundtrip(self):
        obs.reset_metrics()
        obs.counter("test.module_api", "test counter").inc(2)
        snap = obs.metrics_snapshot()
        assert snap["test.module_api"]["value"] == 2
        obs.merge_metrics(snap)
        assert obs.metrics_snapshot()["test.module_api"]["value"] == 4
        obs.reset_metrics()
        assert "test.module_api" not in obs.metrics_snapshot()

    def test_timed_decorator_observes_calls(self):
        obs.reset_metrics()

        @obs.timed("test.timed_s", "timed test function")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        snap = obs.metrics_snapshot()["test.timed_s"]
        assert snap["kind"] == "histogram"
        assert snap["count"] == 2
        assert snap["total"] >= 0.0
        obs.reset_metrics()

    def test_timed_observes_on_exception(self):
        obs.reset_metrics()

        @obs.timed("test.timed_raises_s", "timed raising function")
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            boom()
        assert obs.metrics_snapshot()["test.timed_raises_s"]["count"] == 1
        obs.reset_metrics()


class TestNullHandles:
    def test_null_handles_swallow_updates(self):
        obs.NULL_COUNTER.inc(5)
        obs.NULL_GAUGE.set(1.0)
        obs.NULL_HISTOGRAM.observe(2.0)
        assert obs.NULL_COUNTER.is_zero()
        assert obs.NULL_GAUGE.is_zero()
        assert obs.NULL_HISTOGRAM.is_zero()

    def test_null_handles_are_real_metric_types(self):
        # bench_obs_overhead swaps them in by isinstance checks
        assert isinstance(obs.NULL_COUNTER, obs.Counter)
        assert isinstance(obs.NULL_GAUGE, obs.Gauge)
        assert isinstance(obs.NULL_HISTOGRAM, obs.Histogram)
