"""The device-face fault zoo: registry contracts and model behaviour.

The golden-fingerprint tests pin the ``static-stuck-at`` generator to
the exact maps the pre-zoo ``FaultMap._generate`` produced: the zoo
refactor moved that code, and these digests prove it moved bit for bit
(every published figure sweep depends on those maps staying put).
"""

import hashlib

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultModel,
    available_fault_models,
    get_fault_model_class,
    make_fault_model,
    register_fault_model,
    unregister_fault_model,
)
from repro.pcm.array import PCMArray
from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap
from repro.sim.harness import TechniqueSpec, build_controller


def _map_fingerprint(fault_map):
    """sha256 over (row, positions, stuck_values) of every faulty row."""
    digest = hashlib.sha256()
    for row_index in fault_map.faulty_rows():
        faults = fault_map.row_faults(row_index)
        digest.update(np.int64(row_index).tobytes())
        digest.update(faults.positions.astype(np.int64).tobytes())
        digest.update(faults.stuck_values.astype(np.int64).tobytes())
    return digest.hexdigest()[:16]


class TestRegistry:
    def test_builtin_models_resolve(self):
        names = {cls.name for cls in available_fault_models()}
        assert {"static-stuck-at", "row-correlated", "transient", "wear-drift"} <= names

    def test_unknown_model_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="static-stuck-at"):
            get_fault_model_class("no-such-model")

    def test_bad_constructor_params_wrapped(self):
        with pytest.raises(ConfigurationError, match="transient"):
            make_fault_model("transient", no_such_knob=1)

    def test_duplicate_registration_rejected(self):
        class Imposter(FaultModel):
            name = "static-stuck-at"

        with pytest.raises(ConfigurationError, match="already registered"):
            register_fault_model(Imposter)

    def test_register_and_unregister_roundtrip(self):
        class Custom(FaultModel):
            name = "test-custom-model"
            summary = "test-only"

        register_fault_model(Custom)
        try:
            assert isinstance(make_fault_model("test-custom-model"), Custom)
        finally:
            unregister_fault_model("test-custom-model")
        with pytest.raises(ConfigurationError):
            get_fault_model_class("test-custom-model")


class TestStaticStuckAtGolden:
    """Fingerprints captured from the pre-refactor generator."""

    def test_mlc_default(self):
        fault_map = FaultMap(rows=64, cells_per_row=256, seed=5)
        assert fault_map.total_faults == 157
        assert _map_fingerprint(fault_map) == "0967b60e9e72c7c5"

    def test_slc_clustered(self):
        fault_map = FaultMap(
            rows=64,
            cells_per_row=512,
            technology=CellTechnology.SLC,
            seed=5,
            clustering=0.5,
        )
        assert fault_map.total_faults == 314
        assert _map_fingerprint(fault_map) == "ed17a6beafc8fb4d"

    def test_mlc_any_stuck_values(self):
        fault_map = FaultMap(
            rows=48, cells_per_row=256, seed=9, stuck_values="any"
        )
        assert fault_map.total_faults == 115
        assert _map_fingerprint(fault_map) == "30e4cf53f2a26d3e"

    def test_explicit_model_name_matches_default(self):
        default = FaultMap(rows=64, cells_per_row=256, seed=5)
        explicit = FaultMap(rows=64, cells_per_row=256, seed=5, model="static-stuck-at")
        assert _map_fingerprint(default) == _map_fingerprint(explicit)


class TestRowCorrelated:
    def test_concentrates_same_fault_budget_into_fewer_rows(self):
        static = FaultMap(rows=128, cells_per_row=256, seed=3)
        correlated = FaultMap(rows=128, cells_per_row=256, seed=3, model="row-correlated")
        static_rows = sum(1 for _ in static.faulty_rows())
        correlated_rows = sum(1 for _ in correlated.faulty_rows())
        assert correlated_rows < static_rows
        # Same expected incidence: within 2x either way on this geometry.
        assert correlated.total_faults == pytest.approx(static.total_faults, rel=1.0)

    def test_map_level_clustering_overrides_model_default(self):
        mild = FaultMap(
            rows=128, cells_per_row=256, seed=3, model="row-correlated", clustering=0.25
        )
        fierce = FaultMap(rows=128, cells_per_row=256, seed=3, model="row-correlated")
        assert sum(1 for _ in fierce.faulty_rows()) < sum(1 for _ in mild.faulty_rows())


class TestTransient:
    def test_no_initial_stuck_cells(self):
        fault_map = FaultMap(rows=32, cells_per_row=256, seed=7, model="transient")
        assert fault_map.total_faults == 0

    def _controller(self, corrector, seed=11):
        spec = TechniqueSpec(
            encoder="dbi", fault_model="transient", corrector=corrector
        )
        return build_controller(spec, rows=16, seed=seed)

    def _replay(self, controller, num_writes=24, seed=11):
        rng = np.random.default_rng(seed)
        for _ in range(num_writes):
            words = [int(word) for word in rng.integers(0, 2**63, size=8)]
            controller.write_line(int(rng.integers(0, 16)), words)

    def test_sensing_is_deterministic(self):
        import repro.obs as obs

        runs = []
        for _ in range(2):
            obs.reset_metrics()
            self._replay(self._controller(corrector=None))
            runs.append(obs.metrics_snapshot())
        flips = "faults.transient_flips"
        assert runs[0][flips] == runs[1][flips]
        assert runs[0][flips]["value"] > 0

    def test_ecc_budget_corrects_some_sensed_reads(self):
        import repro.obs as obs

        obs.reset_metrics()
        self._replay(self._controller(corrector="ecp3"))
        snapshot = obs.metrics_snapshot()
        corrected = snapshot["faults.transient_corrected"]["value"]
        escaped = snapshot.get("faults.transient_escaped", {"value": 0})["value"]
        assert corrected > 0
        # With the default 2e-3 rate most reads see <= 3 flips, so the
        # ECP3 budget repairs the bulk of them.
        assert corrected >= escaped


class TestWearDrift:
    def test_cells_stick_as_writes_accumulate(self):
        model = make_fault_model("wear-drift", mean_writes=8.0, minimum_writes=2)
        array = PCMArray(rows=8, row_bits=512, seed=4, fault_model=model)
        assert array.stuck_cell_count() == 0
        rng = np.random.default_rng(4)
        for _ in range(40):
            for row in range(8):
                array.write_row_fast(row, rng.integers(0, 4, size=256, dtype=np.int64))
        assert array.stuck_cell_count() > 0

    def test_explicit_endurance_model_wins(self):
        from repro.pcm.endurance import EnduranceModel

        model = make_fault_model("wear-drift", mean_writes=8.0, minimum_writes=2)
        generous = EnduranceModel(mean_writes=1e9)
        array = PCMArray(
            rows=8, row_bits=512, seed=4, fault_model=model, endurance_model=generous
        )
        rng = np.random.default_rng(4)
        for _ in range(40):
            for row in range(8):
                array.write_row_fast(row, rng.integers(0, 4, size=256, dtype=np.int64))
        assert array.stuck_cell_count() == 0

    def test_thresholds_deterministic(self):
        model = make_fault_model("wear-drift")
        first = model.wear_thresholds(16, 256, seed=5)
        second = model.wear_thresholds(16, 256, seed=5)
        assert np.array_equal(first, second)
        assert first.shape == (16, 256)


class TestSpecWiring:
    def test_unknown_fault_model_fails_at_spec_declaration(self):
        with pytest.raises(ConfigurationError):
            TechniqueSpec(encoder="dbi", fault_model="no-such-model")

    def test_none_model_keeps_task_hash_stable(self):
        from repro.campaign.spec import Task

        base = {"rows": 32, "encoder": "dbi", "seed": 1}
        without = Task(kind="fig7-energy-cell", params=dict(base))
        with_none = Task(kind="fig7-energy-cell", params={**base, "fault_model": None})
        # Legacy hashes must not move when the optional knob is absent;
        # an explicit None is a different param dict and may differ.
        assert without.task_hash == Task(kind="fig7-energy-cell", params=dict(base)).task_hash
        assert isinstance(with_none.task_hash, str)
