"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.spec import get_profile
from repro.traces.synthetic import SyntheticTraceGenerator, generate_trace


class TestGeneration:
    def test_record_count_and_geometry(self):
        trace = generate_trace("lbm", num_writebacks=50, memory_lines=128, seed=1)
        assert len(trace) == 50
        assert trace.words_per_line == 8
        for record in trace:
            assert len(record.words) == 8
            assert 0 <= record.address < 128

    def test_deterministic_per_seed(self):
        a = generate_trace("mcf", 30, seed=7)
        b = generate_trace("mcf", 30, seed=7)
        assert [r.address for r in a] == [r.address for r in b]
        assert [r.words for r in a] == [r.words for r in b]

    def test_different_seeds_differ(self):
        a = generate_trace("mcf", 30, seed=7)
        b = generate_trace("mcf", 30, seed=8)
        assert [r.words for r in a] != [r.words for r in b]

    def test_working_set_clipped_to_memory(self):
        trace = generate_trace("bwaves", 200, memory_lines=32, seed=2)
        assert trace.unique_addresses() <= 32

    def test_zero_writebacks(self):
        assert len(generate_trace("xz", 0, seed=3)) == 0

    def test_profile_object_accepted(self):
        generator = SyntheticTraceGenerator(get_profile("lbm"), memory_lines=64, seed=4)
        assert len(generator.generate(10)) == 10

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticTraceGenerator(12345, memory_lines=64)

    def test_metadata_recorded(self):
        trace = generate_trace("lbm", 10, seed=5)
        assert trace.metadata["suite"] == "fp"
        assert trace.metadata["seed"] == 5


class TestLocality:
    def test_hot_addresses_receive_more_writes(self):
        trace = generate_trace("mcf", 2000, memory_lines=256, seed=6)
        histogram = trace.writes_per_address()
        counts = sorted(histogram.values(), reverse=True)
        hot_share = sum(counts[: max(1, len(counts) // 10)]) / sum(counts)
        # mcf concentrates ~75% of its traffic on ~10% of its working set.
        assert hot_share > 0.4

    def test_uniform_benchmark_less_concentrated(self):
        concentrated = generate_trace("mcf", 2000, memory_lines=256, seed=7)
        spread = generate_trace("xz", 2000, memory_lines=256, seed=7)

        def top_decile_share(trace):
            counts = sorted(trace.writes_per_address().values(), reverse=True)
            return sum(counts[: max(1, len(counts) // 10)]) / sum(counts)

        assert top_decile_share(concentrated) > top_decile_share(spread)


class TestValueModels:
    @pytest.mark.parametrize("bench_name,expected_bias", [("deepsjeng", True), ("xz", False)])
    def test_integer_data_is_biased(self, bench_name, expected_bias):
        trace = generate_trace(bench_name, 100, seed=8)
        ones = sum(bin(word).count("1") for record in trace for word in record.words)
        total = sum(64 for record in trace for _ in record.words)
        ratio = ones / total
        if expected_bias:
            assert ratio < 0.42  # small integers: mostly-zero high bits
        else:
            assert 0.3 < ratio < 0.7

    def test_pointer_words_share_high_bits(self):
        trace = generate_trace("mcf", 20, seed=9)
        tops = {word >> 40 for record in trace for word in record.words}
        assert len(tops) <= 4

    def test_text_words_are_printable_ascii(self):
        trace = generate_trace("xalancbmk", 20, seed=10)
        for record in trace:
            for word in record.words:
                for shift in range(0, 64, 8):
                    byte = (word >> shift) & 0xFF
                    assert 0x20 <= byte < 0x7F

    def test_float_words_cluster_exponents(self):
        trace = generate_trace("bwaves", 50, seed=11)
        exponents = {(word >> 52) & 0x7FF for record in trace for word in record.words}
        assert len(exponents) < 20
