"""Tests for the SPEC-like benchmark profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.traces.spec import BenchmarkProfile, SPEC_2017_PROFILES, get_profile, list_benchmarks


class TestProfiles:
    def test_at_least_ten_benchmarks(self):
        assert len(list_benchmarks()) >= 10

    def test_both_suites_present(self):
        suites = {profile.suite for profile in SPEC_2017_PROFILES.values()}
        assert suites == {"int", "fp"}

    def test_all_value_models_valid(self):
        for profile in SPEC_2017_PROFILES.values():
            assert profile.value_model in {"integer", "float", "pointer", "text", "mixed"}

    def test_write_intensities_differ(self):
        intensities = {p.writebacks_per_kilo_instruction for p in SPEC_2017_PROFILES.values()}
        assert len(intensities) > 5

    def test_lookup_case_insensitive(self):
        assert get_profile("LBM").name == "lbm"
        assert get_profile("cactubssn").name == "cactuBSSN"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            get_profile("not-a-benchmark")

    def test_listing_sorted(self):
        names = list_benchmarks()
        assert names == sorted(names)


class TestProfileValidation:
    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(
                name="x", suite="int", writebacks_per_kilo_instruction=0,
                working_set_lines=10, hot_fraction=0.5, hot_weight=0.5, value_model="integer",
            )

    def test_bad_hot_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(
                name="x", suite="int", writebacks_per_kilo_instruction=1,
                working_set_lines=10, hot_fraction=0.0, hot_weight=0.5, value_model="integer",
            )

    def test_bad_value_model_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(
                name="x", suite="int", writebacks_per_kilo_instruction=1,
                working_set_lines=10, hot_fraction=0.5, hot_weight=0.5, value_model="video",
            )
