"""Tests for the trace containers and serialisation."""

import pytest

from repro.errors import TraceError
from repro.traces.trace import Trace, WritebackRecord


class TestWritebackRecord:
    def test_valid_record(self):
        record = WritebackRecord(address=3, words=(1, 2, 3))
        assert record.address == 3
        assert record.words == (1, 2, 3)

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            WritebackRecord(address=-1, words=(1,))

    def test_empty_words_rejected(self):
        with pytest.raises(TraceError):
            WritebackRecord(address=0, words=())


class TestTrace:
    def _trace(self):
        trace = Trace(name="unit", line_bits=128, word_bits=64)
        trace.append(WritebackRecord(address=0, words=(1, 2)))
        trace.append(WritebackRecord(address=1, words=(3, 4)))
        trace.append(WritebackRecord(address=0, words=(5, 6)))
        return trace

    def test_geometry_validation(self):
        with pytest.raises(TraceError):
            Trace(name="bad", line_bits=100, word_bits=64)

    def test_append_checks_word_count(self):
        trace = Trace(name="t", line_bits=128, word_bits=64)
        with pytest.raises(TraceError):
            trace.append(WritebackRecord(address=0, words=(1,)))

    def test_append_checks_word_width(self):
        trace = Trace(name="t", line_bits=128, word_bits=64)
        with pytest.raises(TraceError):
            trace.append(WritebackRecord(address=0, words=(1 << 64, 0)))

    def test_len_iter_getitem(self):
        trace = self._trace()
        assert len(trace) == 3
        assert trace[1].address == 1
        assert [record.address for record in trace] == [0, 1, 0]

    def test_unique_addresses(self):
        assert self._trace().unique_addresses() == 2

    def test_writes_per_address(self):
        histogram = self._trace().writes_per_address()
        assert histogram == {0: 2, 1: 1}

    def test_words_per_line(self):
        assert self._trace().words_per_line == 2

    def test_save_load_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for a, b in zip(loaded, trace):
            assert a.address == b.address
            assert a.words == b.words

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_gzip_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.jsonl.gz"
        trace.save(path)
        # Really compressed on disk (gzip magic bytes).
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        loaded = Trace.load(path)
        assert loaded.name == trace.name
        assert [record.words for record in loaded] == [record.words for record in trace]

    def test_gzip_detected_by_magic_not_name(self, tmp_path):
        """A gzip payload loads even when the file name hides it."""
        import gzip

        trace = self._trace()
        gz_path = tmp_path / "trace.jsonl.gz"
        trace.save(gz_path)
        disguised = tmp_path / "trace.jsonl"
        disguised.write_bytes(gz_path.read_bytes())
        loaded = Trace.load(disguised)
        assert len(loaded) == len(trace)

    def test_plain_and_gzip_hold_same_payload(self, tmp_path):
        import gzip

        trace = self._trace()
        plain, compressed = tmp_path / "t.jsonl", tmp_path / "t.jsonl.gz"
        trace.save(plain)
        trace.save(compressed)
        assert plain.read_text(encoding="utf-8") == gzip.decompress(
            compressed.read_bytes()
        ).decode("utf-8")
