"""Tests for the result-table container."""

import json

import pytest

from repro.errors import SimulationError
from repro.sim.results import ResultTable


def _table():
    table = ResultTable(title="demo", columns=["name", "value"])
    table.append(name="a", value=1.0)
    table.append(name="b", value=2.5)
    return table


class TestResultTable:
    def test_append_and_len(self):
        assert len(_table()) == 2

    def test_missing_column_rejected(self):
        table = ResultTable(title="demo", columns=["name", "value"])
        with pytest.raises(SimulationError):
            table.append(name="only-name")

    def test_column_access(self):
        assert _table().column("name") == ["a", "b"]

    def test_unknown_column_rejected(self):
        with pytest.raises(SimulationError):
            _table().column("nope")

    def test_filter(self):
        rows = _table().filter(name="a")
        assert len(rows) == 1
        assert rows[0]["value"] == 1.0

    def test_iteration(self):
        assert [row["name"] for row in _table()] == ["a", "b"]

    def test_format_contains_title_and_values(self):
        text = _table().format()
        assert "demo" in text
        assert "2.5" in text

    def test_format_with_notes(self):
        table = ResultTable(title="t", columns=["x"], notes="important caveat")
        table.append(x=1)
        assert "important caveat" in table.format()

    def test_to_json_roundtrip(self, tmp_path):
        path = tmp_path / "table.json"
        payload = _table().to_json(path)
        parsed = json.loads(payload)
        assert parsed["title"] == "demo"
        assert json.loads(path.read_text())["rows"][1]["name"] == "b"

    def test_from_json_payload_roundtrip(self):
        table = _table()
        rebuilt = ResultTable.from_json(table.to_json())
        assert rebuilt.title == table.title
        assert list(rebuilt.columns) == list(table.columns)
        assert rebuilt.rows == table.rows
        assert rebuilt.notes == table.notes

    def test_from_json_path_roundtrip(self, tmp_path):
        path = tmp_path / "table.json"
        table = _table()
        table.to_json(path)
        rebuilt = ResultTable.from_json(path)
        assert rebuilt.rows == table.rows

    def test_from_json_rejects_garbage(self, tmp_path):
        with pytest.raises(SimulationError):
            ResultTable.from_json("{not json")
        with pytest.raises(SimulationError):
            ResultTable.from_json('{"title": "no columns"}')

    def test_extend_appends_validated_rows(self):
        table = _table()
        table.extend([{"name": "c", "value": 3.0, "extra": "dropped"}])
        assert len(table) == 3
        assert table.rows[-1] == {"name": "c", "value": 3.0}

    def test_extend_missing_column_rejected_without_mutation(self):
        table = _table()
        with pytest.raises(SimulationError):
            table.extend([{"name": "c", "value": 3.0}, {"name": "d"}])
        assert len(table) == 2

    def test_merge_concatenates_rows(self):
        merged = _table().merge(_table())
        assert len(merged) == 4
        assert merged.title == "demo"
        assert [row["name"] for row in merged] == ["a", "b", "a", "b"]

    def test_merge_column_mismatch_rejected(self):
        other = ResultTable(title="other", columns=["name", "score"])
        with pytest.raises(SimulationError):
            _table().merge(other)
