"""Tests for the energy studies (Figs. 7 and 9), run at reduced scale."""

import pytest

from repro.sim.energy_sim import EnergyStudyConfig, benchmark_energy_study, random_data_energy_study

#: A deliberately tiny configuration so the full study logic runs in seconds.
_TINY = EnergyStudyConfig(rows=24, num_writes=40, seed=5)


@pytest.fixture(scope="module")
def fig7_table():
    return random_data_energy_study(coset_counts=(32, 256), config=_TINY)


@pytest.fixture(scope="module")
def fig9_table():
    return benchmark_energy_study(
        benchmarks=("lbm", "xz"), num_cosets=64, writebacks_per_benchmark=30, config=_TINY
    )


class TestFig7:
    def test_rows_per_technique_and_count(self, fig7_table):
        assert len(fig7_table) == 2 * 4  # 2 coset counts x 4 techniques

    def test_unencoded_is_reference(self, fig7_table):
        for row in fig7_table.filter(technique="Unencoded"):
            assert row["saving_percent"] == 0.0

    def test_all_coset_techniques_save_energy(self, fig7_table):
        for row in fig7_table:
            if row["technique"] != "Unencoded":
                assert row["saving_percent"] > 10.0

    def test_rcc_is_best_or_close(self, fig7_table):
        for cosets in (32, 256):
            rows = {r["technique"]: r["saving_percent"] for r in fig7_table.filter(cosets=cosets)}
            assert rows["RCC"] >= rows["VCC-Generated"] - 2.0
            assert rows["RCC"] >= rows["VCC-Stored"] - 2.0

    def test_more_cosets_save_more(self, fig7_table):
        for technique in ("RCC", "VCC-Generated", "VCC-Stored"):
            small = fig7_table.filter(cosets=32, technique=technique)[0]["saving_percent"]
            large = fig7_table.filter(cosets=256, technique=technique)[0]["saving_percent"]
            assert large >= small - 1.0

    def test_energy_positive(self, fig7_table):
        for row in fig7_table:
            assert row["total_energy_pj"] > 0.0


class TestFig9:
    def test_rows_per_benchmark(self, fig9_table):
        assert len(fig9_table.filter(benchmark="lbm")) == 5
        assert len(fig9_table.filter(benchmark="xz")) == 5

    def test_vcc_saves_energy_under_both_orderings(self, fig9_table):
        for benchmark in ("lbm", "xz"):
            rows = {r["technique"]: r["saving_percent"] for r in fig9_table.filter(benchmark=benchmark)}
            assert rows["VCC Opt. Energy"] > 10.0
            assert rows["VCC Opt. SAW"] > 10.0

    def test_orderings_are_close(self, fig9_table):
        # The paper's observation: optimising SAW first barely changes the
        # energy saving.
        for benchmark in ("lbm", "xz"):
            rows = {r["technique"]: r["saving_percent"] for r in fig9_table.filter(benchmark=benchmark)}
            assert abs(rows["VCC Opt. Energy"] - rows["VCC Opt. SAW"]) < 12.0

    def test_rcc_comparable_to_vcc(self, fig9_table):
        for benchmark in ("lbm", "xz"):
            rows = {r["technique"]: r["saving_percent"] for r in fig9_table.filter(benchmark=benchmark)}
            assert rows["RCC Opt. Energy"] >= rows["VCC Opt. Energy"] - 5.0
