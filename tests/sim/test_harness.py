"""Tests for the shared simulation harness."""

import pytest

from repro.coding.cost import BitChangeCost, EnergyCost, LexicographicCost, OnesCost, SawCost
from repro.errors import ConfigurationError, SimulationError
from repro.memctrl.controller import LineWriteResult
from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap
from repro.pcm.stats import WriteStats
from repro.sim.harness import (
    TechniqueSpec,
    build_controller,
    drive_random_lines,
    drive_random_lines_scalar,
    drive_trace,
    make_cost,
)
from repro.traces.synthetic import generate_trace


class TestMakeCost:
    @pytest.mark.parametrize(
        "name,expected_type",
        [
            ("bit-changes", BitChangeCost),
            ("ones", OnesCost),
            ("energy", EnergyCost),
            ("saw", SawCost),
            ("energy-then-saw", LexicographicCost),
            ("saw-then-energy", LexicographicCost),
        ],
    )
    def test_names_map_to_types(self, name, expected_type):
        assert isinstance(make_cost(name), expected_type)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cost("maximise-entropy")

    def test_unknown_name_error_lists_valid_names(self):
        """The error names every accepted spelling, so typos self-diagnose."""
        with pytest.raises(ConfigurationError) as excinfo:
            make_cost("engery")
        message = str(excinfo.value)
        assert "engery" in message
        for name in (
            "bit-changes",
            "cell-changes",
            "ones",
            "energy",
            "saw",
            "energy-then-saw",
            "saw-then-energy",
        ):
            assert name in message

    def test_names_case_insensitive(self):
        assert make_cost("Energy").name == make_cost("energy").name

    def test_lexicographic_ordering(self):
        assert make_cost("saw-then-energy").name == "saw>energy"
        assert make_cost("energy-then-saw").name == "energy>saw"


class TestTechniqueSpec:
    def test_display_name_defaults_to_encoder(self):
        assert TechniqueSpec(encoder="rcc").display_name() == "rcc"

    def test_display_name_uses_label(self):
        assert TechniqueSpec(encoder="rcc", label="RCC Opt. SAW").display_name() == "RCC Opt. SAW"

    def test_unknown_cost_rejected_at_construction(self):
        """A misspelt cost fails when the spec is built, not mid-simulation."""
        with pytest.raises(ConfigurationError, match="energy-then-saw"):
            TechniqueSpec(encoder="rcc", cost="engery")

    @pytest.mark.parametrize("bad_count", [0, -1, -256])
    def test_non_positive_coset_counts_rejected(self, bad_count):
        with pytest.raises(ConfigurationError):
            TechniqueSpec(encoder="rcc", num_cosets=bad_count)

    @pytest.mark.parametrize("bad_count", [2.5, "256", None, True])
    def test_non_integer_coset_counts_rejected(self, bad_count):
        with pytest.raises(ConfigurationError):
            TechniqueSpec(encoder="rcc", num_cosets=bad_count)

    def test_numpy_integer_coset_count_normalised(self):
        import numpy as np

        spec = TechniqueSpec(encoder="rcc", num_cosets=np.int64(32))
        assert spec.num_cosets == 32
        assert type(spec.num_cosets) is int


class TestBuildController:
    def test_builds_requested_encoder(self):
        controller = build_controller(
            TechniqueSpec(encoder="rcc", num_cosets=32), rows=8, seed=1
        )
        assert controller.encoder.name == "rcc"
        assert controller.array.rows == 8

    def test_fault_map_attached(self):
        fault_map = FaultMap(rows=8, cells_per_row=256, fault_rate=0.05, seed=2)
        controller = build_controller(
            TechniqueSpec(encoder="unencoded"), rows=8, fault_map=fault_map, seed=2
        )
        assert controller.array.stuck_cell_count() == fault_map.total_faults

    def test_encryption_flag(self):
        encrypted = build_controller(TechniqueSpec(encoder="unencoded"), rows=4, encrypt=True)
        plain = build_controller(TechniqueSpec(encoder="unencoded"), rows=4, encrypt=False)
        assert encrypted.encryption is not None
        assert plain.encryption is None


class TestDrivers:
    def test_drive_random_lines_accumulates(self):
        controller = build_controller(TechniqueSpec(encoder="unencoded"), rows=8, seed=3)
        drive_random_lines(controller, 10, seed=3)
        assert controller.stats.rows_written == 10

    def test_drive_random_lines_returns_stats(self):
        controller = build_controller(TechniqueSpec(encoder="unencoded"), rows=8, seed=3)
        stats = drive_random_lines(controller, 10, seed=3)
        assert isinstance(stats, WriteStats)
        assert stats.rows_written == 10
        assert stats.words_written == 10 * controller.config.words_per_line
        assert stats.total_energy_pj > 0.0

    def test_drive_random_lines_returns_per_call_stats(self):
        # Phased drives on one controller must not alias a live object.
        controller = build_controller(TechniqueSpec(encoder="unencoded"), rows=8, seed=3)
        first = drive_random_lines(controller, 10, seed=3)
        second = drive_random_lines(controller, 5, seed=4)
        assert first is not controller.stats
        assert first.rows_written == 10
        assert second.rows_written == 5
        assert controller.stats.rows_written == 15

    def test_drive_random_lines_negative_rejected(self):
        controller = build_controller(TechniqueSpec(encoder="unencoded"), rows=8)
        with pytest.raises(SimulationError):
            drive_random_lines(controller, -1)
        with pytest.raises(SimulationError):
            drive_random_lines_scalar(controller, -1)

    def test_drive_random_lines_matches_scalar_oracle(self):
        # The batched driver consumes the same seeded stream as the scalar
        # loop; integer accounting agrees exactly and the energy totals to
        # floating-point summation order.
        batched = drive_random_lines(
            build_controller(TechniqueSpec(encoder="rcc", num_cosets=16), rows=8, seed=3),
            25,
            seed=3,
        )
        scalar = drive_random_lines_scalar(
            build_controller(TechniqueSpec(encoder="rcc", num_cosets=16), rows=8, seed=3),
            25,
            seed=3,
        )
        assert batched.rows_written == scalar.rows_written
        assert batched.words_written == scalar.words_written
        assert batched.bits_changed == scalar.bits_changed
        assert batched.cells_changed == scalar.cells_changed
        assert batched.saw_cells == scalar.saw_cells
        assert batched.saw_words == scalar.saw_words
        assert batched.data_energy_pj == pytest.approx(scalar.data_energy_pj)
        assert batched.aux_energy_pj == pytest.approx(scalar.aux_energy_pj)

    def test_drive_trace(self):
        controller = build_controller(TechniqueSpec(encoder="unencoded"), rows=32, seed=4)
        trace = generate_trace("xz", 15, memory_lines=32, seed=4)
        drive_trace(controller, trace, repetitions=2)
        assert controller.stats.rows_written == 30

    def test_drive_trace_returns_replay_result(self):
        controller = build_controller(TechniqueSpec(encoder="rcc", num_cosets=16), rows=32, seed=4)
        trace = generate_trace("xz", 15, memory_lines=32, seed=4)
        replay = drive_trace(controller, trace, repetitions=2)
        assert replay.writes == 30
        assert not replay.stopped_early
        # The replay carries the whole accounting: re-aggregating it
        # reproduces the controller's accumulated statistics, and the
        # scalar view yields per-write LineWriteResult summaries.
        assert replay.write_stats().as_dict() == controller.stats.as_dict()
        results = replay.line_results()
        assert len(results) == 30
        assert all(isinstance(result, LineWriteResult) for result in results)
        rebuilt = WriteStats.from_line_results(results, controller.config.words_per_line)
        for key, value in rebuilt.as_dict().items():
            assert value == pytest.approx(controller.stats.as_dict()[key])

    def test_drive_trace_word_size_checked(self):
        controller = build_controller(TechniqueSpec(encoder="unencoded"), rows=8)
        trace = generate_trace("xz", 5, memory_lines=8, word_bits=32, line_bits=512, seed=5)
        with pytest.raises(SimulationError):
            drive_trace(controller, trace)

    def test_drive_trace_line_geometry_checked(self):
        # Same word size but a different line width must fail up front
        # with a clear SimulationError, not deep inside the write path.
        controller = build_controller(TechniqueSpec(encoder="unencoded"), rows=8)
        trace = generate_trace("xz", 5, memory_lines=8, word_bits=64, line_bits=256, seed=5)
        with pytest.raises(SimulationError, match="line geometry"):
            drive_trace(controller, trace)
