"""Tests for the lifetime simulator (Figs. 11 and 12), run at tiny scale."""

import pytest

from repro.sim.harness import TechniqueSpec
from repro.sim.lifetime_sim import (
    DEFAULT_LIFETIME_TECHNIQUES,
    LifetimeStudyConfig,
    _row_failure,
    lifetime_study,
    simulate_lifetime,
)

#: A deliberately tiny configuration: small memory, short endurance, short
#: trace.  Lifetimes are a few hundred writes, so the whole module runs in
#: well under a minute while still exercising wear, stuck cells, masking,
#: and the 4-row failure criterion.
_TINY = LifetimeStudyConfig(
    rows=24,
    mean_endurance_writes=24,
    trace_writebacks=120,
    max_line_writes=20_000,
    seed=21,
)


@pytest.fixture(scope="module")
def lifetimes():
    """Writes-to-failure of the main techniques on one benchmark."""
    specs = {
        "unencoded": TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded"),
        "secded": TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="SECDED", corrector="secded"),
        "ecp3": TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="ECP3", corrector="ecp3"),
        "flipcy": TechniqueSpec(encoder="flipcy", cost="saw-then-energy", num_cosets=256, label="Flipcy"),
        "dbi/fnw": TechniqueSpec(encoder="dbi/fnw", cost="saw-then-energy", num_cosets=256, label="DBI/FNW"),
        "vcc": TechniqueSpec(encoder="vcc-stored", cost="saw-then-energy", num_cosets=256, label="VCC"),
        "rcc": TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=256, label="RCC"),
    }
    return {name: simulate_lifetime(spec, "lbm", _TINY) for name, spec in specs.items()}


class TestFailureCriteria:
    def test_coset_rows_fail_on_any_residual_error(self):
        spec = TechniqueSpec(encoder="vcc")
        assert _row_failure(spec, [0, 0, 1, 0, 0, 0, 0, 0], 512)
        assert not _row_failure(spec, [0] * 8, 512)

    def test_secded_tolerates_one_per_word(self):
        spec = TechniqueSpec(encoder="unencoded", corrector="secded")
        assert not _row_failure(spec, [1, 1, 0, 1, 0, 0, 0, 0], 512)
        assert _row_failure(spec, [2, 0, 0, 0, 0, 0, 0, 0], 512)

    def test_ecp_tolerates_three_per_row(self):
        spec = TechniqueSpec(encoder="unencoded", corrector="ecp3")
        assert not _row_failure(spec, [2, 1, 0, 0, 0, 0, 0, 0], 512)
        assert _row_failure(spec, [2, 2, 0, 0, 0, 0, 0, 0], 512)

    def test_unknown_corrector_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            _row_failure(TechniqueSpec(encoder="unencoded", corrector="raid"), [1], 512)


class TestLifetimeOrdering:
    """The qualitative ordering of Figs. 11/12 must hold."""

    def test_everything_eventually_fails(self, lifetimes):
        for value in lifetimes.values():
            assert 0 < value < _TINY.max_line_writes

    def test_secded_at_least_unencoded(self, lifetimes):
        assert lifetimes["secded"] >= lifetimes["unencoded"]

    def test_ecp_at_least_unencoded(self, lifetimes):
        assert lifetimes["ecp3"] >= lifetimes["unencoded"]

    def test_flipcy_close_to_unencoded(self, lifetimes):
        assert lifetimes["flipcy"] <= lifetimes["unencoded"] * 1.3

    def test_vcc_beats_simple_protection(self, lifetimes):
        assert lifetimes["vcc"] > lifetimes["unencoded"]
        assert lifetimes["vcc"] > lifetimes["flipcy"]
        assert lifetimes["vcc"] >= lifetimes["dbi/fnw"]

    def test_vcc_improvement_is_substantial(self, lifetimes):
        # The paper reports >= 50% over unencoded; allow slack at tiny scale.
        assert lifetimes["vcc"] >= lifetimes["unencoded"] * 1.3

    def test_rcc_and_vcc_comparable(self, lifetimes):
        assert lifetimes["vcc"] >= lifetimes["rcc"] * 0.7

    def test_deterministic(self):
        spec = TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded")
        assert simulate_lifetime(spec, "lbm", _TINY) == simulate_lifetime(spec, "lbm", _TINY)

    def test_repetition_changes_seed(self):
        spec = TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded")
        base = simulate_lifetime(spec, "lbm", _TINY, seed_offset=0)
        other = simulate_lifetime(spec, "lbm", _TINY, seed_offset=1)
        assert base != other


class TestLifetimeStudyTable:
    def test_table_structure(self):
        table = lifetime_study(
            benchmarks=("lbm",),
            techniques=(
                TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded"),
                TechniqueSpec(encoder="vcc-stored", cost="saw-then-energy", label="VCC"),
            ),
            num_cosets=64,
            config=_TINY,
        )
        assert len(table) == 2
        unencoded = table.filter(technique="Unencoded")[0]
        vcc = table.filter(technique="VCC")[0]
        assert unencoded["improvement_vs_unencoded"] == 0.0
        assert vcc["improvement_vs_unencoded"] > 0.0
