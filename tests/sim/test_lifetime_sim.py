"""Tests for the lifetime simulator (Figs. 11 and 12), run at tiny scale."""

import pytest

from repro.campaign.store import ResultStore
from repro.sim.harness import TechniqueSpec
from repro.sim.lifetime_sim import (
    DEFAULT_LIFETIME_TECHNIQUES,
    LifetimeStudyConfig,
    _row_failure,
    lifetime_study,
    mean_lifetime_by_coset_count,
    mean_lifetime_tasks,
    simulate_lifetime,
)

#: A deliberately tiny configuration: small memory, short endurance, short
#: trace.  Lifetimes are a few hundred writes, so the whole module runs in
#: well under a minute while still exercising wear, stuck cells, masking,
#: and the 4-row failure criterion.
_TINY = LifetimeStudyConfig(
    rows=24,
    mean_endurance_writes=24,
    trace_writebacks=120,
    max_line_writes=20_000,
    seed=21,
)


@pytest.fixture(scope="module")
def lifetimes():
    """Writes-to-failure of the main techniques on one benchmark."""
    specs = {
        "unencoded": TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded"),
        "secded": TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="SECDED", corrector="secded"),
        "ecp3": TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="ECP3", corrector="ecp3"),
        "flipcy": TechniqueSpec(encoder="flipcy", cost="saw-then-energy", num_cosets=256, label="Flipcy"),
        "dbi/fnw": TechniqueSpec(encoder="dbi/fnw", cost="saw-then-energy", num_cosets=256, label="DBI/FNW"),
        "vcc": TechniqueSpec(encoder="vcc-stored", cost="saw-then-energy", num_cosets=256, label="VCC"),
        "rcc": TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=256, label="RCC"),
    }
    outcomes = {name: simulate_lifetime(spec, "lbm", _TINY) for name, spec in specs.items()}
    assert all(not outcome.censored for outcome in outcomes.values())
    return {name: outcome.writes for name, outcome in outcomes.items()}


class TestFailureCriteria:
    def test_coset_rows_fail_on_any_residual_error(self):
        spec = TechniqueSpec(encoder="vcc")
        assert _row_failure(spec, [0, 0, 1, 0, 0, 0, 0, 0], 512)
        assert not _row_failure(spec, [0] * 8, 512)

    def test_secded_tolerates_one_per_word(self):
        spec = TechniqueSpec(encoder="unencoded", corrector="secded")
        assert not _row_failure(spec, [1, 1, 0, 1, 0, 0, 0, 0], 512)
        assert _row_failure(spec, [2, 0, 0, 0, 0, 0, 0, 0], 512)

    def test_ecp_tolerates_three_per_row(self):
        spec = TechniqueSpec(encoder="unencoded", corrector="ecp3")
        assert not _row_failure(spec, [2, 1, 0, 0, 0, 0, 0, 0], 512)
        assert _row_failure(spec, [2, 2, 0, 0, 0, 0, 0, 0], 512)

    def test_unknown_corrector_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            _row_failure(TechniqueSpec(encoder="unencoded", corrector="raid"), [1], 512)


class TestLifetimeOrdering:
    """The qualitative ordering of Figs. 11/12 must hold."""

    def test_everything_eventually_fails(self, lifetimes):
        for value in lifetimes.values():
            assert 0 < value < _TINY.max_line_writes

    def test_secded_at_least_unencoded(self, lifetimes):
        assert lifetimes["secded"] >= lifetimes["unencoded"]

    def test_ecp_at_least_unencoded(self, lifetimes):
        assert lifetimes["ecp3"] >= lifetimes["unencoded"]

    def test_flipcy_close_to_unencoded(self, lifetimes):
        assert lifetimes["flipcy"] <= lifetimes["unencoded"] * 1.3

    def test_vcc_beats_simple_protection(self, lifetimes):
        assert lifetimes["vcc"] > lifetimes["unencoded"]
        assert lifetimes["vcc"] > lifetimes["flipcy"]
        assert lifetimes["vcc"] >= lifetimes["dbi/fnw"]

    def test_vcc_improvement_is_substantial(self, lifetimes):
        # The paper reports >= 50% over unencoded; allow slack at tiny scale.
        assert lifetimes["vcc"] >= lifetimes["unencoded"] * 1.3

    def test_rcc_and_vcc_comparable(self, lifetimes):
        assert lifetimes["vcc"] >= lifetimes["rcc"] * 0.7

    def test_deterministic(self):
        spec = TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded")
        assert simulate_lifetime(spec, "lbm", _TINY) == simulate_lifetime(spec, "lbm", _TINY)

    def test_repetition_changes_seed(self):
        spec = TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded")
        base = simulate_lifetime(spec, "lbm", _TINY, seed_offset=0)
        other = simulate_lifetime(spec, "lbm", _TINY, seed_offset=1)
        assert base.writes != other.writes

    def test_censored_when_memory_outlives_cap(self):
        # An effectively infinite endurance never fails a row: the cell
        # must report the cap as censored instead of a failure time.
        config = LifetimeStudyConfig(
            rows=24,
            mean_endurance_writes=1e9,
            trace_writebacks=60,
            max_line_writes=150,
            seed=21,
        )
        spec = TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded")
        outcome = simulate_lifetime(spec, "lbm", config)
        assert outcome.censored
        assert outcome.writes == config.max_line_writes


class TestLifetimeStudyTable:
    def test_table_structure(self):
        table = lifetime_study(
            benchmarks=("lbm",),
            techniques=(
                TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded"),
                TechniqueSpec(encoder="vcc-stored", cost="saw-then-energy", label="VCC"),
            ),
            num_cosets=64,
            config=_TINY,
        )
        assert len(table) == 2
        unencoded = table.filter(technique="Unencoded")[0]
        vcc = table.filter(technique="VCC")[0]
        assert unencoded["improvement_vs_unencoded"] == 0.0
        assert vcc["improvement_vs_unencoded"] > 0.0

    def test_censored_cells_reported_in_notes(self):
        censoring = LifetimeStudyConfig(
            rows=24,
            mean_endurance_writes=1e9,
            trace_writebacks=60,
            max_line_writes=120,
            seed=21,
        )
        table = lifetime_study(
            benchmarks=("lbm",),
            techniques=(
                TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded"),
            ),
            config=censoring,
        )
        assert "1 of 1 cells censored at the 120-write cap" in table.notes


_FIG12_TECHNIQUES = (
    TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded"),
    TechniqueSpec(encoder="rcc", cost="saw-then-energy", label="RCC"),
)


class TestFig12Campaign:
    """Fig. 12 runs through the campaign engine with the Fig. 11 contracts."""

    def test_rows_bit_identical_at_any_jobs_count(self):
        kwargs = dict(
            coset_counts=(16, 32),
            benchmarks=("lbm",),
            techniques=_FIG12_TECHNIQUES,
            config=_TINY,
        )
        serial = mean_lifetime_by_coset_count(jobs=1, **kwargs)
        parallel = mean_lifetime_by_coset_count(jobs=3, **kwargs)
        assert serial.rows == parallel.rows

    def test_cached_resume_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        kwargs = dict(
            coset_counts=(16,),
            benchmarks=("lbm",),
            techniques=_FIG12_TECHNIQUES,
            config=_TINY,
            store=store,
        )
        first = mean_lifetime_by_coset_count(**kwargs)
        tasks = mean_lifetime_tasks(
            coset_counts=(16,), benchmarks=("lbm",), techniques=_FIG12_TECHNIQUES, config=_TINY
        )
        assert all(store.get(task) is not None for task in tasks)
        second = mean_lifetime_by_coset_count(**kwargs)
        assert first.rows == second.rows

    def test_repetitions_produce_paired_seeds(self):
        """Repetition N offsets the seed identically for every technique."""
        tasks = mean_lifetime_tasks(
            coset_counts=(16,),
            benchmarks=("lbm",),
            techniques=_FIG12_TECHNIQUES,
            config=_TINY,
            repetitions=2,
        )
        assert len(tasks) == len(_FIG12_TECHNIQUES) * 2
        reps_by_technique = {}
        for task in tasks:
            reps_by_technique.setdefault(task.params["label"], set()).add(task.params["rep"])
        assert all(reps == {0, 1} for reps in reps_by_technique.values())
        # The rep-th repetition of any technique replays the same trace on
        # the same endurance landscape: both values change together when
        # the rep changes, exactly as simulate_lifetime's seed derivation.
        for spec in _FIG12_TECHNIQUES:
            base = simulate_lifetime(spec, "lbm", _TINY, seed_offset=0)
            other = simulate_lifetime(spec, "lbm", _TINY, seed_offset=1)
            assert base.writes != other.writes

    def test_mean_spans_benchmarks_and_repetitions(self):
        one = mean_lifetime_by_coset_count(
            coset_counts=(16,),
            benchmarks=("lbm",),
            techniques=_FIG12_TECHNIQUES[:1],
            config=_TINY,
            repetitions=2,
        )
        values = [
            simulate_lifetime(_FIG12_TECHNIQUES[0], "lbm", _TINY, seed_offset=rep).writes
            for rep in range(2)
        ]
        expected = sum(values) / len(values)
        assert one.rows[0]["mean_writes_to_failure"] == pytest.approx(expected)
