"""Tests for the repetition/aggregation helpers."""

import pytest

from repro.errors import SimulationError
from repro.sim.repetition import RepeatedMetric, aggregate_columns, repeat_metric


class TestRepeatMetric:
    def test_runs_requested_repetitions(self):
        seen = []

        def experiment(seed):
            seen.append(seed)
            return float(seed)

        metric = repeat_metric(experiment, repetitions=4, base_seed=10)
        assert seen == [10, 11, 12, 13]
        assert metric.repetitions == 4

    def test_mean_and_std(self):
        metric = repeat_metric(lambda seed: float(seed), repetitions=3, base_seed=1)
        assert metric.mean == pytest.approx(2.0)
        assert metric.std == pytest.approx(1.0)

    def test_confidence_interval_brackets_mean(self):
        metric = repeat_metric(lambda seed: float(seed % 5), repetitions=10, base_seed=0)
        assert metric.ci95_low <= metric.mean <= metric.ci95_high

    def test_single_repetition_has_zero_spread(self):
        metric = repeat_metric(lambda seed: 7.5, repetitions=1)
        assert metric.std == 0.0
        assert metric.ci95_low == metric.ci95_high == 7.5

    def test_invalid_repetitions(self):
        with pytest.raises(SimulationError):
            repeat_metric(lambda seed: 0.0, repetitions=0)

    def test_deterministic_experiment_has_zero_std(self):
        metric = repeat_metric(lambda seed: 3.0, repetitions=5)
        assert metric.std == 0.0
        assert metric.values == (3.0,) * 5


class TestAggregateColumns:
    def test_aggregates_selected_columns(self):
        rows = [{"a": 1.0, "b": 10.0}, {"a": 3.0, "b": 30.0}]
        summary = aggregate_columns(rows, ["a", "b"])
        assert summary["a"].mean == pytest.approx(2.0)
        assert summary["b"].mean == pytest.approx(20.0)

    def test_missing_column_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_columns([{"a": 1.0}], ["b"])

    def test_empty_rows_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_columns([], ["a"])

    def test_works_with_result_table_rows(self):
        from repro.sim.results import ResultTable

        table = ResultTable(title="t", columns=["technique", "saving"])
        table.append(technique="vcc", saving=25.0)
        table.append(technique="vcc", saving=27.0)
        summary = aggregate_columns(table.rows, ["saving"])
        assert summary["saving"].mean == pytest.approx(26.0)
