"""Tests for the repetition/aggregation helpers."""

import pytest

from repro.errors import SimulationError
from repro.sim.repetition import (
    RepeatedMetric,
    aggregate_columns,
    kaplan_meier_mean,
    repeat_metric,
)


class TestKaplanMeierMean:
    def test_no_censoring_equals_sample_mean(self):
        values = [3.0, 7.0, 7.0, 11.0, 2.0]
        estimate = kaplan_meier_mean(values)
        assert estimate.mean == pytest.approx(sum(values) / len(values))
        assert estimate.events == 5
        assert estimate.censored == 0
        assert not estimate.restricted

    def test_all_censored_gives_restricted_max(self):
        # No failures: the survival curve never drops, so the restricted
        # mean is the largest lower bound observed.
        estimate = kaplan_meier_mean([100, 150, 120], censored=[True, True, True])
        assert estimate.mean == pytest.approx(150.0)
        assert estimate.events == 0
        assert estimate.censored == 3
        assert estimate.restricted

    def test_textbook_example(self):
        # Events at 2 and 5, censoring at 3: S = 1 on [0,2), 2/3 on [2,5)
        # with the censored subject leaving at 3, then S = 0 after 5
        # (1 death among 1 at risk).  RMST = 2 + (2/3)*3 = 4.
        estimate = kaplan_meier_mean([2, 3, 5], censored=[False, True, False])
        assert estimate.mean == pytest.approx(2 + (2 / 3) * 3)
        assert estimate.events == 2
        assert estimate.censored == 1
        assert not estimate.restricted

    def test_censored_lower_bound_raises_mean_above_naive(self):
        # Treating the censored 5 as a failure would give (3 + 5) / 2 = 4;
        # Kaplan-Meier keeps the survivor's probability mass alive at 3.
        estimate = kaplan_meier_mean([3, 5], censored=[True, False])
        assert estimate.mean == pytest.approx(5.0)
        assert estimate.mean > 4.0

    def test_events_precede_censorings_at_equal_times(self):
        # The subject censored at 4 was still at risk when the failure at
        # 4 happened: S drops to 2/3, not 1/2.
        estimate = kaplan_meier_mean([4, 4, 9], censored=[False, True, False])
        assert estimate.mean == pytest.approx(4 + (2 / 3) * 5)

    def test_validation(self):
        with pytest.raises(SimulationError):
            kaplan_meier_mean([])
        with pytest.raises(SimulationError):
            kaplan_meier_mean([1.0, -2.0])
        with pytest.raises(SimulationError):
            kaplan_meier_mean([1.0, 2.0], censored=[True])


class TestRepeatMetric:
    def test_runs_requested_repetitions(self):
        seen = []

        def experiment(seed):
            seen.append(seed)
            return float(seed)

        metric = repeat_metric(experiment, repetitions=4, base_seed=10)
        assert seen == [10, 11, 12, 13]
        assert metric.repetitions == 4

    def test_mean_and_std(self):
        metric = repeat_metric(lambda seed: float(seed), repetitions=3, base_seed=1)
        assert metric.mean == pytest.approx(2.0)
        assert metric.std == pytest.approx(1.0)

    def test_confidence_interval_brackets_mean(self):
        metric = repeat_metric(lambda seed: float(seed % 5), repetitions=10, base_seed=0)
        assert metric.ci95_low <= metric.mean <= metric.ci95_high

    def test_single_repetition_has_zero_spread(self):
        metric = repeat_metric(lambda seed: 7.5, repetitions=1)
        assert metric.std == 0.0
        assert metric.ci95_low == metric.ci95_high == 7.5

    def test_invalid_repetitions(self):
        with pytest.raises(SimulationError):
            repeat_metric(lambda seed: 0.0, repetitions=0)

    def test_deterministic_experiment_has_zero_std(self):
        metric = repeat_metric(lambda seed: 3.0, repetitions=5)
        assert metric.std == 0.0
        assert metric.values == (3.0,) * 5


class TestAggregateColumns:
    def test_aggregates_selected_columns(self):
        rows = [{"a": 1.0, "b": 10.0}, {"a": 3.0, "b": 30.0}]
        summary = aggregate_columns(rows, ["a", "b"])
        assert summary["a"].mean == pytest.approx(2.0)
        assert summary["b"].mean == pytest.approx(20.0)

    def test_missing_column_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_columns([{"a": 1.0}], ["b"])

    def test_empty_rows_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_columns([], ["a"])

    def test_works_with_result_table_rows(self):
        from repro.sim.results import ResultTable

        table = ResultTable(title="t", columns=["technique", "saving"])
        table.append(technique="vcc", saving=25.0)
        table.append(technique="vcc", saving=27.0)
        summary = aggregate_columns(table.rows, ["saving"])
        assert summary["saving"].mean == pytest.approx(26.0)
