"""Tests for the SAW studies (Figs. 2, 8, 10), run at reduced scale."""

import pytest

from repro.sim.saw_sim import (
    SawStudyConfig,
    benchmark_saw_study,
    fault_masking_study,
    saw_vs_coset_count_study,
)

_TINY = SawStudyConfig(rows=32, num_writes=60, seed=9)


@pytest.fixture(scope="module")
def fig2_table():
    return fault_masking_study(coset_counts=(1, 4, 32), config=_TINY)


@pytest.fixture(scope="module")
def fig8_table():
    return saw_vs_coset_count_study(coset_counts=(32, 256), config=_TINY)


@pytest.fixture(scope="module")
def fig10_table():
    return benchmark_saw_study(
        benchmarks=("lbm", "xz"), num_cosets=256, writebacks_per_benchmark=40, config=_TINY
    )


class TestFig2:
    def test_fault_rate_decreases_with_cosets(self, fig2_table):
        rates = fig2_table.column("observed_fault_rate")
        assert rates[0] > rates[-1]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_unencoded_rate_near_physical_rate(self, fig2_table):
        # With one coset (unencoded) the observed rate should be within an
        # order of magnitude of the raw 1e-2 map (only mismatching cells count).
        rate = fig2_table.filter(cosets=1)[0]["observed_fault_rate"]
        assert 1e-3 < rate < 1e-2

    def test_cells_written_constant(self, fig2_table):
        assert len(set(fig2_table.column("cells_written"))) == 1


class TestFig8:
    def test_vcc_reduces_saw(self, fig8_table):
        for cosets in (32, 256):
            rows = {r["technique"]: r["saw_cells"] for r in fig8_table.filter(cosets=cosets)}
            assert rows["VCC"] < rows["Unencoded"]

    def test_reduction_grows_with_cosets(self, fig8_table):
        small = fig8_table.filter(cosets=32, technique="VCC")[0]["reduction_percent"]
        large = fig8_table.filter(cosets=256, technique="VCC")[0]["reduction_percent"]
        assert large >= small

    def test_large_count_reaches_high_reduction(self, fig8_table):
        assert fig8_table.filter(cosets=256, technique="VCC")[0]["reduction_percent"] > 80.0


class TestFig10:
    def test_every_benchmark_reduced(self, fig10_table):
        for benchmark in ("lbm", "xz"):
            rows = fig10_table.filter(benchmark=benchmark)
            unencoded = next(r for r in rows if r["technique"] == "Unencoded")
            vcc = next(r for r in rows if r["technique"] != "Unencoded")
            assert vcc["saw_cells"] < unencoded["saw_cells"]
            assert vcc["reduction_percent"] > 70.0

    def test_technique_label_mentions_configuration(self, fig10_table):
        labels = {r["technique"] for r in fig10_table if r["technique"] != "Unencoded"}
        assert any("VCC(" in label for label in labels)
