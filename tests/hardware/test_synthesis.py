"""Tests for the analytic encoder-hardware model (Fig. 6 shape)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.synthesis import DesignPoint, HardwareEstimate, estimate_design, fig6_sweep


def _estimate(style, num_cosets, **kwargs):
    return estimate_design(DesignPoint(style=style, num_cosets=num_cosets, **kwargs))


class TestDesignPoint:
    def test_labels(self):
        assert DesignPoint(style="rcc").label == "RCC"
        assert DesignPoint(style="vcc", word_bits=64, stored_kernels=True).label == "VCC-64-Stored"
        assert DesignPoint(style="vcc", word_bits=32, stored_kernels=False).label == "VCC-32"

    def test_kernel_count(self):
        assert DesignPoint(style="vcc", num_cosets=256, partitions=4).num_kernels == 16
        assert DesignPoint(style="rcc", num_cosets=256).num_kernels == 256

    def test_invalid_style(self):
        with pytest.raises(ConfigurationError):
            DesignPoint(style="magic")

    def test_invalid_cosets(self):
        with pytest.raises(ConfigurationError):
            DesignPoint(style="rcc", num_cosets=1)


class TestFig6Shape:
    """The qualitative trends of Fig. 6 must hold."""

    def test_rcc_area_exceeds_vcc(self):
        for num_cosets in (32, 64, 128, 256):
            assert _estimate("rcc", num_cosets).area_um2 > _estimate("vcc", num_cosets).area_um2

    def test_rcc_area_grows_faster(self):
        rcc_growth = _estimate("rcc", 256).area_um2 - _estimate("rcc", 32).area_um2
        vcc_growth = _estimate("vcc", 256).area_um2 - _estimate("vcc", 32).area_um2
        assert rcc_growth > 5 * vcc_growth

    def test_rcc_energy_order_of_magnitude_higher(self):
        for num_cosets in (32, 256):
            assert _estimate("rcc", num_cosets).energy_pj > 5 * _estimate("vcc", num_cosets).energy_pj

    def test_rcc_energy_gap_widens(self):
        gap_32 = _estimate("rcc", 32).energy_pj - _estimate("vcc", 32).energy_pj
        gap_256 = _estimate("rcc", 256).energy_pj - _estimate("vcc", 256).energy_pj
        assert gap_256 > gap_32

    def test_vcc32_costs_more_than_vcc64(self):
        for num_cosets in (32, 64, 128, 256):
            assert (
                _estimate("vcc", num_cosets, word_bits=32).energy_pj
                > _estimate("vcc", num_cosets, word_bits=64).energy_pj
            )

    def test_stored_and_generated_are_close(self):
        for num_cosets in (32, 256):
            generated = _estimate("vcc", num_cosets, stored_kernels=False)
            stored = _estimate("vcc", num_cosets, stored_kernels=True)
            assert stored.area_um2 == pytest.approx(generated.area_um2, rel=0.5)
            assert stored.delay_ps == pytest.approx(generated.delay_ps, rel=0.05)

    def test_delays_in_nanosecond_range(self):
        vcc = _estimate("vcc", 256)
        rcc = _estimate("rcc", 256)
        assert 1.0 <= vcc.delay_ns <= 2.2
        assert 2.0 <= rcc.delay_ns <= 3.0
        assert rcc.delay_ps > vcc.delay_ps

    def test_delay_small_relative_to_access(self):
        # The encode delay must stay small against the 84 ns array access,
        # otherwise the Fig. 13 performance conclusion would not hold.
        assert _estimate("rcc", 256).delay_ns < 0.05 * 84.0

    def test_monotonic_in_cosets(self):
        for style in ("rcc", "vcc"):
            areas = [_estimate(style, n).area_um2 for n in (32, 64, 128, 256)]
            delays = [_estimate(style, n).delay_ps for n in (32, 64, 128, 256)]
            assert areas == sorted(areas)
            assert delays == sorted(delays)


class TestSweep:
    def test_sweep_covers_all_designs(self):
        estimates = fig6_sweep((32, 64))
        labels = {e.design.label for e in estimates}
        assert labels == {"RCC", "VCC-64", "VCC-64-Stored", "VCC-32", "VCC-32-Stored"}
        assert len(estimates) == 10

    def test_sweep_returns_estimates(self):
        for estimate in fig6_sweep((32,)):
            assert isinstance(estimate, HardwareEstimate)
            assert estimate.area_um2 > 0
            assert estimate.energy_pj > 0
            assert estimate.delay_ps > 0
