"""Tests for the VCC configuration object."""

import pytest

from repro.core.config import EncodeRegion, VCCConfig
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology


class TestDerivedQuantities:
    def test_paper_configuration_256(self):
        config = VCCConfig.for_cosets(256)
        assert config.num_cosets == 256
        assert config.num_kernels == 16
        assert config.partitions == 4
        assert config.aux_bits == 8

    @pytest.mark.parametrize("num_cosets,expected_kernels", [(32, 2), (64, 4), (128, 8), (256, 16)])
    def test_evaluation_sweep_kernel_counts(self, num_cosets, expected_kernels):
        config = VCCConfig.for_cosets(num_cosets)
        assert config.num_kernels == expected_kernels
        assert config.num_cosets == num_cosets

    def test_aux_bits_equal_log2_cosets(self):
        for num_cosets in (16, 32, 64, 128, 256):
            config = VCCConfig.for_cosets(num_cosets)
            assert config.aux_bits == num_cosets.bit_length() - 1

    def test_right_plane_halves_encoded_bits(self):
        config = VCCConfig.for_cosets(256, stored_kernels=False)
        assert config.encode_region is EncodeRegion.RIGHT_PLANE
        assert config.encoded_bits == 32

    def test_stored_kernels_use_full_word(self):
        config = VCCConfig.for_cosets(256, stored_kernels=True)
        assert config.encode_region is EncodeRegion.FULL_WORD
        assert config.encoded_bits == 64

    def test_slc_uses_full_word(self):
        config = VCCConfig.for_cosets(256, technology=CellTechnology.SLC)
        assert config.encode_region is EncodeRegion.FULL_WORD
        assert config.stored_kernels

    def test_cells_per_partition(self):
        config = VCCConfig.for_cosets(256)
        assert config.cells_per_partition * config.partitions == config.cells_per_word

    def test_describe_mentions_parameters(self):
        text = VCCConfig.for_cosets(64).describe()
        assert "N=64" in text and "r=4" in text

    def test_word_32_supported(self):
        config = VCCConfig.for_cosets(64, word_bits=32)
        assert config.word_bits == 32
        assert config.num_cosets == 64


class TestValidation:
    def test_generated_kernels_require_right_plane(self):
        with pytest.raises(ConfigurationError):
            VCCConfig(
                word_bits=64,
                kernel_bits=16,
                num_kernels=4,
                technology=CellTechnology.MLC,
                encode_region=EncodeRegion.FULL_WORD,
                stored_kernels=False,
            )

    def test_right_plane_requires_mlc(self):
        with pytest.raises(ConfigurationError):
            VCCConfig(
                word_bits=64,
                kernel_bits=16,
                num_kernels=4,
                technology=CellTechnology.SLC,
                encode_region=EncodeRegion.RIGHT_PLANE,
                stored_kernels=True,
            )

    def test_kernel_width_must_divide_region(self):
        with pytest.raises(ConfigurationError):
            VCCConfig(word_bits=64, kernel_bits=7, num_kernels=4)

    def test_kernel_count_power_of_two(self):
        with pytest.raises(ConfigurationError):
            VCCConfig(word_bits=64, kernel_bits=8, num_kernels=3)

    def test_for_cosets_rejects_non_multiple(self):
        with pytest.raises(ConfigurationError):
            VCCConfig.for_cosets(40)

    def test_for_cosets_rejects_too_small(self):
        with pytest.raises(ConfigurationError):
            VCCConfig.for_cosets(8)

    def test_frozen(self):
        config = VCCConfig.for_cosets(64)
        with pytest.raises(AttributeError):
            config.word_bits = 32
