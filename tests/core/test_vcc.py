"""Tests for the VCC encoder (Algorithm 1)."""

import numpy as np
import pytest

from repro.coding.base import WordContext
from repro.coding.cost import BitChangeCost, EnergyCost, OnesCost, SawCost, saw_then_energy
from repro.coding.rcc import RCCEncoder
from repro.coding.unencoded import UnencodedEncoder
from repro.core.config import EncodeRegion, VCCConfig
from repro.core.kernels import StoredKernelProvider
from repro.core.vcc import VCCEncoder
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.pcm.energy import MLCEnergyModel
from repro.utils.bitops import split_planes


def _context(old_word, stuck=None, old_aux=0):
    return WordContext.from_word(old_word, 64, 2, stuck_mask=stuck, old_aux=old_aux)


def _random_word(rng):
    return int(rng.integers(0, 1 << 32)) << 32 | int(rng.integers(0, 1 << 32))


class TestRoundTrip:
    @pytest.mark.parametrize("stored", [True, False])
    @pytest.mark.parametrize("num_cosets", [32, 64, 256])
    def test_encode_decode_identity(self, rng, stored, num_cosets):
        encoder = VCCEncoder(
            VCCConfig.for_cosets(num_cosets, stored_kernels=stored),
            cost_function=BitChangeCost(),
            seed=1,
        )
        for _ in range(15):
            data = _random_word(rng)
            context = _context(_random_word(rng))
            encoded = encoder.encode(data, context)
            assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_roundtrip_word32(self, rng):
        encoder = VCCEncoder(VCCConfig.for_cosets(64, word_bits=32), seed=2)
        for _ in range(10):
            data = int(rng.integers(0, 1 << 32))
            context = WordContext.from_word(int(rng.integers(0, 1 << 32)), 32, 2)
            encoded = encoder.encode(data, context)
            assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_roundtrip_with_all_cost_functions(self, rng):
        for cost in (OnesCost(), BitChangeCost(), EnergyCost(CellTechnology.MLC), SawCost(), saw_then_energy()):
            encoder = VCCEncoder(VCCConfig.for_cosets(64), cost_function=cost, seed=3)
            data = _random_word(rng)
            context = _context(_random_word(rng))
            encoded = encoder.encode(data, context)
            assert encoder.decode(encoded.codeword, encoded.aux) == data


class TestStructure:
    def test_aux_bits_match_config(self):
        encoder = VCCEncoder(VCCConfig.for_cosets(256))
        assert encoder.aux_bits == 8
        assert encoder.num_cosets == 256

    def test_generated_kernels_leave_left_plane_unchanged(self, rng):
        encoder = VCCEncoder(VCCConfig.for_cosets(256, stored_kernels=False), seed=4)
        for _ in range(10):
            data = _random_word(rng)
            encoded = encoder.encode(data, _context(_random_word(rng)))
            data_left, _ = split_planes(data, 64)
            code_left, _ = split_planes(encoded.codeword, 64)
            assert data_left == code_left

    def test_stored_kernel_name(self):
        assert VCCEncoder(VCCConfig.for_cosets(64, stored_kernels=True)).name == "vcc-stored"
        assert VCCEncoder(VCCConfig.for_cosets(64, stored_kernels=False)).name == "vcc"

    def test_aux_encodes_kernel_and_flags(self, rng):
        config = VCCConfig.for_cosets(64, stored_kernels=True)
        encoder = VCCEncoder(config, cost_function=BitChangeCost(), seed=5)
        encoded = encoder.encode(_random_word(rng), _context(_random_word(rng)))
        kernel_index = encoded.aux >> config.partitions
        assert 0 <= kernel_index < config.num_kernels

    def test_provider_mismatch_rejected(self):
        config = VCCConfig.for_cosets(64, stored_kernels=True)
        provider = StoredKernelProvider(8, config.num_kernels, seed=0)  # wrong width
        with pytest.raises(ConfigurationError):
            VCCEncoder(config, kernel_provider=provider)

    def test_decode_rejects_bad_aux(self):
        encoder = VCCEncoder(VCCConfig.for_cosets(64))
        with pytest.raises(ConfigurationError):
            encoder.decode(0, 1 << encoder.aux_bits)


class TestOptimisation:
    def test_beats_unencoded_on_bit_changes(self, rng):
        cost = BitChangeCost()
        vcc = VCCEncoder(VCCConfig.for_cosets(256, stored_kernels=True), cost_function=cost, seed=6)
        unencoded = UnencodedEncoder(cost_function=cost)
        vcc_total = 0.0
        plain_total = 0.0
        for _ in range(30):
            data = _random_word(rng)
            context = _context(_random_word(rng))
            vcc_total += vcc.encode(data, context).cost
            plain_total += unencoded.encode(data, context).cost
        assert vcc_total < plain_total

    def test_reduces_mlc_write_energy(self, rng):
        model = MLCEnergyModel()
        cost = EnergyCost(CellTechnology.MLC, mlc_model=model)
        vcc = VCCEncoder(VCCConfig.for_cosets(256), cost_function=cost, seed=7)
        vcc_energy = 0.0
        plain_energy = 0.0
        for _ in range(30):
            data = _random_word(rng)
            old = _random_word(rng)
            context = _context(old)
            encoded = vcc.encode(data, context)
            vcc_energy += model.word_energy(old, encoded.codeword)
            plain_energy += model.word_energy(old, data)
        # The paper reports 22-28% dynamic-energy savings; require a clear win.
        assert vcc_energy < plain_energy * 0.85

    def test_more_cosets_do_not_hurt(self, rng):
        cost = BitChangeCost()
        small = VCCEncoder(VCCConfig.for_cosets(32, stored_kernels=True), cost_function=cost, seed=8)
        large = VCCEncoder(VCCConfig.for_cosets(256, stored_kernels=True), cost_function=cost, seed=8)
        small_total = 0.0
        large_total = 0.0
        for _ in range(40):
            data = _random_word(rng)
            context = _context(_random_word(rng))
            small_total += small.encode(data, context).cost
            large_total += large.encode(data, context).cost
        assert large_total <= small_total

    def test_close_to_rcc_on_energy(self, rng):
        # Fig. 7: VCC approaches RCC's energy savings at equal coset count.
        model = MLCEnergyModel()
        cost = EnergyCost(CellTechnology.MLC, mlc_model=model)
        vcc = VCCEncoder(VCCConfig.for_cosets(256, stored_kernels=True), cost_function=cost, seed=9)
        rcc = RCCEncoder(num_cosets=256, cost_function=cost, seed=9)
        vcc_energy = 0.0
        rcc_energy = 0.0
        for _ in range(25):
            data = _random_word(rng)
            old = _random_word(rng)
            context = _context(old)
            vcc_energy += model.word_energy(old, vcc.encode(data, context).codeword)
            rcc_energy += model.word_energy(old, rcc.encode(data, context).codeword)
        assert vcc_energy <= rcc_energy * 1.15

    def test_saw_masking_with_stored_kernels(self, rng):
        cost = saw_then_energy()
        encoder = VCCEncoder(VCCConfig.for_cosets(256, stored_kernels=True), cost_function=cost, seed=10)
        saw_cost = SawCost()
        masked = 0
        trials = 25
        for _ in range(trials):
            old = _random_word(rng)
            stuck = np.zeros(32, dtype=bool)
            stuck[int(rng.integers(0, 32))] = True
            context = _context(old, stuck=stuck)
            encoded = encoder.encode(_random_word(rng), context)
            from repro.pcm.array import word_to_cells

            residual = saw_cost.cell_costs(word_to_cells(encoded.codeword, 64, 2), context).sum()
            if residual == 0:
                masked += 1
        assert masked >= trials * 0.9

    def test_right_plane_variant_cannot_fix_left_digit(self, rng):
        # Structural property discussed in DESIGN.md: the generated-kernel
        # variant never changes the left digit, so a fault whose stuck left
        # digit differs from the data cannot be masked.
        encoder = VCCEncoder(VCCConfig.for_cosets(256, stored_kernels=False), cost_function=saw_then_energy())
        data = 0  # all symbols 00 -> left digits all 0
        old = 0xFFFFFFFFFFFFFFFF  # all symbols 11 -> stuck left digit 1
        stuck = np.zeros(32, dtype=bool)
        stuck[5] = True
        context = _context(old, stuck=stuck)
        encoded = encoder.encode(data, context)
        from repro.pcm.array import word_to_cells

        residual = SawCost().cell_costs(word_to_cells(encoded.codeword, 64, 2), context).sum()
        assert residual == 1


class TestWorkedExampleInternals:
    def test_explicit_kernels_are_used(self):
        config = VCCConfig(
            word_bits=64,
            kernel_bits=16,
            num_kernels=4,
            encode_region=EncodeRegion.FULL_WORD,
            stored_kernels=True,
        )
        provider = StoredKernelProvider(16, 4, kernels=[1, 2, 3, 4])
        encoder = VCCEncoder(config, cost_function=OnesCost(), kernel_provider=provider)
        assert encoder.kernel_provider.kernels_for(0) == [1, 2, 3, 4]
