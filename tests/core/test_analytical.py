"""Tests for the closed-form Eq. (1)/(2) models."""

import math

import pytest

from repro.core.analytical import (
    expected_bit_changes_bcc,
    expected_bit_changes_rcc,
    expected_bit_changes_unencoded,
    fig1_series,
    reduction_percent_bcc,
    reduction_percent_rcc,
)
from repro.errors import ConfigurationError


class TestUnencoded:
    def test_half_the_bits_change(self):
        assert expected_bit_changes_unencoded(64) == 32.0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            expected_bit_changes_unencoded(0)


class TestRCC:
    def test_single_coset_matches_unencoded(self):
        assert expected_bit_changes_rcc(64, 1, include_aux=False) == pytest.approx(32.0, abs=1e-6)

    def test_monotonically_decreasing_in_cosets(self):
        values = [expected_bit_changes_rcc(64, n, include_aux=False) for n in (1, 2, 4, 16, 64, 256)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_aux_term_added(self):
        without = expected_bit_changes_rcc(64, 16, include_aux=False)
        with_aux = expected_bit_changes_rcc(64, 16, include_aux=True)
        assert with_aux == pytest.approx(without + 2.0)

    def test_bounded_below_by_zero(self):
        assert expected_bit_changes_rcc(64, 1 << 16, include_aux=False) > 0.0

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            expected_bit_changes_rcc(64, 4, p=1.5)

    def test_matches_monte_carlo(self, rng):
        # Cross-check Eq. (1) against a direct simulation for a small case.
        n, num_cosets, trials = 16, 8, 3000
        total = 0
        for _ in range(trials):
            data = int(rng.integers(0, 1 << n))
            best = min(
                bin(data ^ int(rng.integers(0, 1 << n))).count("1") for _ in range(num_cosets)
            )
            total += best
        simulated = total / trials
        analytical = expected_bit_changes_rcc(n, num_cosets, include_aux=False)
        assert abs(simulated - analytical) < 0.15


class TestBCC:
    def test_single_coset_matches_unencoded(self):
        assert expected_bit_changes_bcc(64, 1) == 32.0

    def test_better_than_unencoded(self):
        for n_cosets in (2, 4, 16, 256):
            assert expected_bit_changes_bcc(64, n_cosets) < 32.0

    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            expected_bit_changes_bcc(64, 24)

    def test_requires_divisible_sections(self):
        with pytest.raises(ConfigurationError):
            expected_bit_changes_bcc(64, 64)  # log2 = 6 does not divide 64

    def test_matches_monte_carlo(self, rng):
        # FNW over k sections with the aux bit counted, small case.
        n, num_cosets, trials = 16, 4, 3000
        k = 2
        section = n // k
        total = 0
        for _ in range(trials):
            for _section in range(k):
                data = int(rng.integers(0, 1 << (section + 1)))
                ones = bin(data).count("1")
                total += min(ones, section + 1 - ones)
        simulated = total / trials
        analytical = expected_bit_changes_bcc(n, num_cosets)
        assert abs(simulated - analytical) < 0.2


class TestFig1Shape:
    """The qualitative claims of Fig. 1 must hold."""

    def test_bcc_wins_at_small_counts(self):
        assert reduction_percent_bcc(64, 2) > reduction_percent_rcc(64, 2)
        assert reduction_percent_bcc(64, 4) > reduction_percent_rcc(64, 4)

    def test_rcc_wins_at_16_and_above(self):
        assert reduction_percent_rcc(64, 16) > reduction_percent_bcc(64, 16)
        assert reduction_percent_rcc(64, 256) > reduction_percent_bcc(64, 256)

    def test_rcc_margin_grows_with_cosets(self):
        margin_16 = reduction_percent_rcc(64, 16) - reduction_percent_bcc(64, 16)
        margin_256 = reduction_percent_rcc(64, 256) - reduction_percent_bcc(64, 256)
        assert margin_256 > margin_16

    def test_series_rows(self):
        rows = fig1_series()
        assert [row["cosets"] for row in rows] == [2, 4, 16, 256]
        for row in rows:
            assert 0.0 < row["bcc_reduction_percent"] < 100.0
            assert 0.0 < row["rcc_reduction_percent"] < 100.0
