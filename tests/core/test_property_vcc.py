"""Property-based tests (hypothesis) for the VCC encoder and the baselines.

The invariants checked here hold for *every* input, not just the sampled
regression cases:

* decode(encode(d)) == d for every technique and every data/old-word pair;
* the auxiliary value always fits in the advertised number of bits;
* the reported cost of the selected candidate never exceeds the cost of
  writing the data unencoded (for techniques whose candidate set contains
  the identity transformation);
* the generated-kernel MLC variant never modifies the left-digit plane.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.coding.base import WordContext
from repro.coding.cost import BitChangeCost, EnergyCost, OnesCost
from repro.coding.registry import make_encoder
from repro.core.config import VCCConfig
from repro.core.vcc import VCCEncoder
from repro.pcm.cell import CellTechnology
from repro.utils.bitops import split_planes

word64 = st.integers(min_value=0, max_value=(1 << 64) - 1)

_SETTINGS = settings(max_examples=40, deadline=None)


class TestRoundTripProperties:
    @_SETTINGS
    @given(data=word64, old=word64)
    def test_vcc_generated_roundtrip(self, data, old):
        encoder = VCCEncoder(VCCConfig.for_cosets(64, stored_kernels=False), seed=1)
        encoded = encoder.encode(data, WordContext.from_word(old, 64, 2))
        assert encoder.decode(encoded.codeword, encoded.aux) == data

    @_SETTINGS
    @given(data=word64, old=word64)
    def test_vcc_stored_roundtrip(self, data, old):
        encoder = VCCEncoder(VCCConfig.for_cosets(64, stored_kernels=True), seed=1)
        encoded = encoder.encode(data, WordContext.from_word(old, 64, 2))
        assert encoder.decode(encoded.codeword, encoded.aux) == data

    @_SETTINGS
    @given(data=word64, old=word64, name=st.sampled_from(["dbi", "fnw", "flipcy", "bcc", "rcc"]))
    def test_baseline_roundtrip(self, data, old, name):
        encoder = make_encoder(name, num_cosets=16, cost_function=BitChangeCost(), seed=2)
        encoded = encoder.encode(data, WordContext.from_word(old, 64, 2))
        assert encoder.decode(encoded.codeword, encoded.aux) == data


class TestStructuralProperties:
    @_SETTINGS
    @given(data=word64, old=word64)
    def test_aux_fits_in_advertised_bits(self, data, old):
        encoder = VCCEncoder(VCCConfig.for_cosets(128, stored_kernels=True), seed=3)
        encoded = encoder.encode(data, WordContext.from_word(old, 64, 2))
        assert 0 <= encoded.aux < (1 << encoder.aux_bits)
        assert encoded.aux_bits == encoder.aux_bits

    @_SETTINGS
    @given(data=word64, old=word64)
    def test_left_plane_preserved_by_generated_kernels(self, data, old):
        encoder = VCCEncoder(VCCConfig.for_cosets(256, stored_kernels=False), seed=4)
        encoded = encoder.encode(data, WordContext.from_word(old, 64, 2))
        assert split_planes(data, 64)[0] == split_planes(encoded.codeword, 64)[0]

    @_SETTINGS
    @given(data=word64, old=word64)
    def test_cost_is_non_negative(self, data, old):
        encoder = VCCEncoder(
            VCCConfig.for_cosets(64), cost_function=EnergyCost(CellTechnology.MLC), seed=5
        )
        encoded = encoder.encode(data, WordContext.from_word(old, 64, 2))
        assert encoded.cost >= 0.0

    @_SETTINGS
    @given(data=word64)
    def test_ones_cost_never_exceeds_unencoded_plus_aux(self, data):
        # The identity virtual coset is not necessarily in VCC's candidate
        # set, but the folded XOR/XNOR choice guarantees at most m/2 ones
        # per partition, so the total can never exceed n/2 + aux bits.
        encoder = VCCEncoder(
            VCCConfig.for_cosets(64, stored_kernels=True), cost_function=OnesCost(), seed=6
        )
        encoded = encoder.encode(data, WordContext.blank(64, 2))
        assert encoded.cost <= 32 + encoder.aux_bits

    @_SETTINGS
    @given(data=word64, old=word64)
    def test_rcc_no_worse_than_unencoded(self, data, old):
        cost = BitChangeCost()
        encoder = make_encoder("rcc", num_cosets=32, cost_function=cost, seed=7)
        context = WordContext.from_word(old, 64, 2)
        encoded = encoder.encode(data, context)
        data_cost = encoded.cost - cost.aux_cost(encoded.aux, 0, encoder.aux_bits)
        assert data_cost <= bin(data ^ old).count("1")

    @_SETTINGS
    @given(old=word64)
    def test_encoding_old_value_is_cheap(self, old):
        # Writing back exactly what is stored should cost (nearly) nothing
        # beyond the auxiliary bits under the bit-change objective.
        cost = BitChangeCost()
        encoder = VCCEncoder(VCCConfig.for_cosets(64, stored_kernels=True), cost_function=cost, seed=8)
        context = WordContext.from_word(old, 64, 2)
        encoded = encoder.encode(old, context)
        data_cost = encoded.cost - cost.aux_cost(encoded.aux, 0, encoder.aux_bits)
        assert data_cost <= 32
