"""Tests for the kernel providers (stored ROM and Algorithm 2 generator)."""

import pytest

from repro.core.config import EncodeRegion, VCCConfig
from repro.core.kernels import GeneratedKernelProvider, StoredKernelProvider
from repro.errors import ConfigurationError
from repro.utils.bitops import interleave_planes, split_planes


class TestStoredKernels:
    def test_count_and_width(self):
        provider = StoredKernelProvider(16, 8, seed=1)
        kernels = provider.kernels_for(0)
        assert len(kernels) == 8
        assert all(0 <= k < (1 << 16) for k in kernels)

    def test_independent_of_data(self):
        provider = StoredKernelProvider(16, 8, seed=1)
        assert provider.kernels_for(0) == provider.kernels_for(0xDEADBEEF)

    def test_deterministic_per_seed(self):
        assert StoredKernelProvider(8, 4, seed=2).kernels == StoredKernelProvider(8, 4, seed=2).kernels

    def test_different_seeds_differ(self):
        assert StoredKernelProvider(16, 8, seed=1).kernels != StoredKernelProvider(16, 8, seed=2).kernels

    def test_kernels_distinct_and_not_trivial(self):
        provider = StoredKernelProvider(16, 16, seed=3)
        kernels = provider.kernels_for(0)
        assert len(set(kernels)) == 16
        assert 0 not in kernels
        assert (1 << 16) - 1 not in kernels

    def test_no_complementary_pairs(self):
        provider = StoredKernelProvider(8, 8, seed=4)
        kernels = set(provider.kernels_for(0))
        for kernel in kernels:
            assert (kernel ^ 0xFF) not in kernels or kernel == kernel ^ 0xFF

    def test_explicit_kernels(self):
        provider = StoredKernelProvider(4, 2, kernels=[0b1010, 0b0110])
        assert provider.kernels_for(123) == [0b1010, 0b0110]

    def test_explicit_kernels_validated(self):
        with pytest.raises(ConfigurationError):
            StoredKernelProvider(4, 2, kernels=[0b1010])
        with pytest.raises(ConfigurationError):
            StoredKernelProvider(4, 2, kernels=[0b1010, 1 << 5])

    def test_is_stored_flag(self):
        assert StoredKernelProvider(8, 2, seed=0).is_stored


class TestGeneratedKernels:
    def _config(self, num_kernels=16):
        return VCCConfig(
            word_bits=64,
            kernel_bits=8,
            num_kernels=num_kernels,
            encode_region=EncodeRegion.RIGHT_PLANE,
            stored_kernels=False,
        )

    def test_requires_right_plane(self):
        config = VCCConfig(
            word_bits=64, kernel_bits=16, num_kernels=4, stored_kernels=True,
            encode_region=EncodeRegion.FULL_WORD,
        )
        with pytest.raises(ConfigurationError):
            GeneratedKernelProvider(config)

    def test_kernel_count_and_width(self):
        provider = GeneratedKernelProvider(self._config())
        kernels = provider.kernels_for(0x0123456789ABCDEF)
        assert len(kernels) == 16
        assert all(0 <= k < (1 << 8) for k in kernels)

    def test_derived_from_left_plane_only(self):
        provider = GeneratedKernelProvider(self._config())
        word = 0x0123456789ABCDEF
        left, right = split_planes(word, 64)
        # Change only the right plane: kernels must not change.
        modified = interleave_planes(left, right ^ 0xFFFF, 64)
        assert provider.kernels_for(word) == provider.kernels_for(modified)

    def test_changes_with_left_plane(self):
        provider = GeneratedKernelProvider(self._config())
        word = 0x0123456789ABCDEF
        left, right = split_planes(word, 64)
        modified = interleave_planes(left ^ 0xFFFF, right, 64)
        assert provider.kernels_for(word) != provider.kernels_for(modified)

    def test_not_stored(self):
        assert not GeneratedKernelProvider(self._config()).is_stored

    def test_small_kernel_count(self):
        provider = GeneratedKernelProvider(self._config(num_kernels=2))
        kernels = provider.kernels_for(0xFEDCBA9876543210)
        assert len(kernels) == 2

    def test_rejects_oversized_word(self):
        provider = GeneratedKernelProvider(self._config())
        with pytest.raises(ConfigurationError):
            provider.kernels_for(1 << 64)

    def test_deterministic(self):
        provider = GeneratedKernelProvider(self._config())
        word = 0xA5A5A5A5A5A5A5A5
        assert provider.kernels_for(word) == provider.kernels_for(word)
