"""Regression test against the paper's Fig. 3 worked example."""

from repro.coding.base import WordContext
from repro.experiments.fig03_worked_example import (
    FIG3_DATA_BLOCK,
    FIG3_KERNELS,
    build_example_encoder,
    run,
)
from repro.utils.bitops import split_subblocks


#: Expected output of Fig. 3(e): the encoded 64-bit block.
FIG3_EXPECTED_CODEWORD = int(
    "0000101100000000" "0000011100000000" "0001000001100001" "0000110011010000", 2
)

#: Expected auxiliary bits of Fig. 3(e): kernel index 00, flags 0110.
FIG3_EXPECTED_AUX = 0b000110


class TestFig3:
    def test_data_block_matches_figure(self):
        subs = split_subblocks(FIG3_DATA_BLOCK, 64, 16)
        assert subs[0] == int("1010001011011011", 2)
        assert subs[3] == int("1010010100001011", 2)

    def test_kernel_zero_costs_match_figure_d1(self):
        # Fig. 3(d.1) first row: 3, 13, 12, 5 ones.
        subs = split_subblocks(FIG3_DATA_BLOCK, 64, 16)
        ones = [bin(sub ^ FIG3_KERNELS[0]).count("1") for sub in subs]
        assert ones == [3, 13, 12, 5]

    def test_folded_costs_match_figure_d2(self):
        # Fig. 3(d.2) first row: 3, 3, 4, 5 after using the complement where
        # the XOR form writes more than m/2 ones.
        subs = split_subblocks(FIG3_DATA_BLOCK, 64, 16)
        folded = [min(c, 16 - c) for c in (bin(sub ^ FIG3_KERNELS[0]).count("1") for sub in subs)]
        assert folded == [3, 3, 4, 5]

    def test_selected_candidate_matches_figure_e(self):
        encoder = build_example_encoder()
        encoded = encoder.encode(FIG3_DATA_BLOCK, WordContext.blank(64, 2))
        assert encoded.codeword == FIG3_EXPECTED_CODEWORD
        assert encoded.aux == FIG3_EXPECTED_AUX
        assert encoded.cost == 17  # 3 + 3 + 4 + 5 ones + 2 aux ones

    def test_decode_recovers_data(self):
        encoder = build_example_encoder()
        encoded = encoder.encode(FIG3_DATA_BLOCK, WordContext.blank(64, 2))
        assert encoder.decode(encoded.codeword, encoded.aux) == FIG3_DATA_BLOCK

    def test_run_reports_consistent_table(self):
        table = run()
        values = {row["quantity"]: row["value"] for row in table}
        assert values["decode(Xopt) == D"] is True
        assert values["selected codeword Xopt"] == f"{FIG3_EXPECTED_CODEWORD:016x}"
