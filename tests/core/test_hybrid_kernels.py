"""Tests for the hybrid (biased + random) kernel extension.

The paper's conclusion proposes extending VCC to systems that store both
encrypted and plaintext data "by adding the identity and inversion
kernels", which makes the biased Flip-N-Write candidates part of the
virtual coset set.  ``StoredKernelProvider(include_biased=True)`` realises
that extension.
"""

import numpy as np

from repro.coding.base import WordContext
from repro.coding.cost import BitChangeCost
from repro.core.config import EncodeRegion, VCCConfig
from repro.core.kernels import StoredKernelProvider
from repro.core.vcc import VCCEncoder


def _hybrid_encoder(num_cosets=256, seed=1):
    config = VCCConfig.for_cosets(num_cosets, stored_kernels=True)
    provider = StoredKernelProvider(
        config.kernel_bits, config.num_kernels, seed=seed, include_biased=True
    )
    return VCCEncoder(config, cost_function=BitChangeCost(), kernel_provider=provider)


def _plain_encoder(num_cosets=256, seed=1):
    config = VCCConfig.for_cosets(num_cosets, stored_kernels=True)
    return VCCEncoder(config, cost_function=BitChangeCost(), seed=seed)


class TestHybridKernelSet:
    def test_identity_kernel_present(self):
        provider = StoredKernelProvider(16, 8, seed=3, include_biased=True)
        assert provider.kernels_for(0)[0] == 0

    def test_remaining_kernels_random_and_distinct(self):
        provider = StoredKernelProvider(16, 8, seed=3, include_biased=True)
        kernels = provider.kernels_for(0)
        assert len(set(kernels)) == 8
        assert all(k != 0 for k in kernels[1:])

    def test_plain_provider_has_no_identity(self):
        provider = StoredKernelProvider(16, 8, seed=3, include_biased=False)
        assert 0 not in provider.kernels_for(0)


class TestHybridBehaviour:
    def test_roundtrip(self, rng):
        encoder = _hybrid_encoder()
        for _ in range(10):
            data = int(rng.integers(0, 1 << 63))
            context = WordContext.from_word(int(rng.integers(0, 1 << 63)), 64, 2)
            encoded = encoder.encode(data, context)
            assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_biased_rewrite_costs_nothing(self):
        # Re-writing the value already stored is free for the hybrid encoder
        # because the identity kernel (XOR form, no flips) is a candidate.
        encoder = _hybrid_encoder()
        data = 0x0123456789ABCDEF
        context = WordContext.from_word(data, 64, 2)
        encoded = encoder.encode(data, context)
        data_cost = encoded.cost - encoder.cost_function.aux_cost(encoded.aux, 0, encoder.aux_bits)
        assert data_cost == 0.0

    def test_hybrid_matches_fnw_on_biased_data(self, rng):
        # On similar-to-stored (biased) data the hybrid encoder should do at
        # least as well as Flip-N-Write, which is exactly its identity-kernel
        # candidate subset.
        from repro.coding.fnw import FNWEncoder

        hybrid = _hybrid_encoder()
        fnw = FNWEncoder(partitions=4, cost_function=BitChangeCost())
        hybrid_total = 0.0
        fnw_total = 0.0
        for _ in range(20):
            old = int(rng.integers(0, 1 << 63))
            data = old ^ int(rng.integers(0, 1 << 8))  # small update to stored data
            context = WordContext.from_word(old, 64, 2)
            hybrid_total += hybrid.encode(data, context).cost
            fnw_total += fnw.encode(data, context).cost
        assert hybrid_total <= fnw_total + 1e-9

    def test_hybrid_keeps_random_data_performance(self, rng):
        # Sacrificing one random kernel for the identity kernel should not
        # meaningfully hurt the encrypted-data (random) case.
        hybrid = _hybrid_encoder(seed=5)
        plain = _plain_encoder(seed=5)
        hybrid_total = 0.0
        plain_total = 0.0
        for _ in range(40):
            data = int(rng.integers(0, 1 << 63))
            context = WordContext.from_word(int(rng.integers(0, 1 << 63)), 64, 2)
            hybrid_total += hybrid.encode(data, context).cost
            plain_total += plain.encode(data, context).cost
        assert hybrid_total <= plain_total * 1.05
