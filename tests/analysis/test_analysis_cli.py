"""CLI behavior: exit codes, output formats, baseline flow."""

import json

import pytest

from repro.analysis import main

VIOLATING = "import random\n"
CLEAN = "import math\n\nTOTAL: int = 3\n"


@pytest.fixture()
def violating_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(VIOLATING, encoding="utf-8")
    return path


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "good.py"
    path.write_text(CLEAN, encoding="utf-8")
    return path


class TestExitCodes:
    def test_exit_zero_on_clean_tree(self, clean_file, capsys):
        assert main([str(clean_file), "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out

    def test_exit_one_on_findings(self, violating_file, capsys):
        assert main([str(violating_file), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out
        assert "1 new finding(s)" in out

    def test_exit_two_on_unknown_rule(self, clean_file, capsys):
        assert main([str(clean_file), "--select", "NOPE999"]) == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.py")]) == 2

    def test_exit_two_without_paths(self, capsys):
        assert main([]) == 2


class TestSelection:
    def test_select_limits_rules(self, violating_file, capsys):
        # DET002 fires on the fixture, but only NUM is selected.
        assert main([str(violating_file), "--no-baseline", "--select", "NUM"]) == 0

    def test_ignore_drops_rule(self, violating_file):
        assert main([str(violating_file), "--no-baseline", "--ignore", "DET002"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET005", "NUM001", "REG001", "API001"):
            assert code in out


class TestOutputFormats:
    def test_json_format(self, violating_file, capsys):
        assert main([str(violating_file), "--no-baseline", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["counts"]["new"] == 1
        assert report["findings"][0]["rule"] == "DET002"
        assert report["findings"][0]["fingerprint"]

    def test_output_file_written_even_in_text_mode(self, violating_file, tmp_path, capsys):
        out_path = tmp_path / "findings.json"
        assert (
            main(
                [str(violating_file), "--no-baseline", "--output", str(out_path)]
            )
            == 1
        )
        report = json.loads(out_path.read_text(encoding="utf-8"))
        assert report["counts"]["total"] == 1


class TestBaselineFlow:
    def test_write_then_gate(self, violating_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # Writing the baseline grandfathers the finding...
        assert (
            main([str(violating_file), "--baseline", str(baseline), "--write-baseline"])
            == 0
        )
        assert baseline.is_file()
        # ...so the same tree now gates clean...
        assert main([str(violating_file), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out
        # ...but a new violation still fails.
        violating_file.write_text(VIOLATING + "from random import shuffle\n", "utf-8")
        assert main([str(violating_file), "--baseline", str(baseline)]) == 1

    def test_default_baseline_discovered_in_cwd(self, violating_file, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([str(violating_file), "--write-baseline"]) == 0
        assert (tmp_path / "analysis-baseline.json").is_file()
        assert main([str(violating_file)]) == 0
        assert main([str(violating_file), "--no-baseline"]) == 1
