"""REG rule fixtures: the encoder and task-kind registry contracts."""

import textwrap

from repro.analysis import analyze_source


def codes(findings):
    return [f.rule for f in findings]


def run(source, path="src/repro/example.py", **kwargs):
    # Scope to the family under test so fixture scaffolding (unannotated
    # defs, etc.) does not trip unrelated rules.
    kwargs.setdefault("select", ["REG"])
    return analyze_source(textwrap.dedent(source), path=path, **kwargs)


class TestREG001EncoderContract:
    def test_violating_missing_batch_overrides(self):
        findings = run(
            """
            from repro.coding.registry import register_encoder

            @register_encoder("toy")
            class ToyEncoder(Encoder):
                def decode_line(self, codewords, auxes):
                    return codewords
            """
        )
        assert codes(findings) == ["REG001", "REG001"]
        messages = " ".join(f.message for f in findings)
        assert "encode_line" in messages and "encode_lines" in messages

    def test_violating_signature_drift(self):
        findings = run(
            """
            from repro.coding.registry import register_encoder

            @register_encoder("toy")
            class ToyEncoder(FNWEncoder):
                def encode_line(self, data, ctx):
                    return data
            """
        )
        assert codes(findings) == ["REG001"]
        assert "signature" in findings[0].message

    def test_clean_full_contract(self):
        findings = run(
            """
            from repro.coding.registry import register_encoder

            @register_encoder("toy")
            class ToyEncoder(Encoder):
                def encode_line(self, words, context):
                    return words

                def encode_lines(self, words_matrix, contexts):
                    return words_matrix
            """
        )
        assert findings == []

    def test_clean_subclass_of_concrete_encoder_inherits_batch_paths(self):
        findings = run(
            """
            from repro.coding.registry import register_encoder

            @register_encoder("toy-dbi")
            class ToyDBIEncoder(FNWEncoder):
                pass
            """
        )
        assert findings == []

    def test_clean_unregistered_class_is_ignored(self):
        findings = run(
            """
            class Helper(Encoder):
                pass
            """
        )
        assert findings == []

    def test_waived(self):
        findings = run(
            """
            from repro.coding.registry import register_encoder

            @register_encoder("toy")
            class ToyEncoder(Encoder):  # repro: allow[REG001] reason=scalar-only pedagogy encoder, perf irrelevant
                def encode_line(self, words, context):
                    return words
            """
        )
        assert findings == []


class TestREG002TaskContract:
    def test_violating_non_literal_kind(self):
        findings = run(
            """
            from repro.campaign.tasks import register_task

            KIND = "fig9"

            @register_task(KIND)
            def run_fig9(params):
                return []
            """
        )
        assert codes(findings) == ["REG002"]
        assert "literal" in findings[0].message

    def test_violating_extra_params(self):
        findings = run(
            """
            from repro.campaign.tasks import register_task

            @register_task("fig9")
            def run_fig9(params, verbose=False):
                return []
            """
        )
        assert codes(findings) == ["REG002"]
        assert "exactly one" in findings[0].message

    def test_violating_bare_decoration(self):
        findings = run(
            """
            from repro.campaign.tasks import register_task

            @register_task
            def run_fig9(params):
                return []
            """
        )
        assert codes(findings) == ["REG002"]

    def test_clean_literal_kind_single_param(self):
        findings = run(
            """
            from repro.campaign.tasks import register_task

            @register_task("fig9", description="endurance sweep")
            def run_fig9(params):
                return []
            """
        )
        assert findings == []

    def test_waived(self):
        findings = run(
            """
            from repro.campaign.tasks import register_task

            @register_task("debug", description="scratch")
            def run_debug(params, extra=None):  # repro: allow[REG002] reason=local debugging shim, never content-addressed
                return []
            """
        )
        assert findings == []
