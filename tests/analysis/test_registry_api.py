"""The rule registry: registration, selection, custom rules end to end."""

import ast

import pytest

from repro.analysis import (
    analyze_source,
    available_rules,
    register_rule,
    rule_specs,
    unregister_rule,
)
from repro.analysis.registry import get_rule, select_rules
from repro.errors import ConfigurationError

EXPECTED_RULES = {
    "DET001", "DET002", "DET003", "DET004", "DET005",
    "NUM001", "NUM002", "NUM003",
    "REG001", "REG002",
    "API001", "API002", "API003",
    "OBS001",
    "PAR001", "PAR002", "PAR003", "PAR004",
    "IMP001",
}


class TestBuiltinRegistry:
    def test_all_builtin_rules_registered(self):
        assert EXPECTED_RULES <= set(available_rules())

    def test_specs_have_summaries(self):
        for spec in rule_specs():
            assert spec.summary, f"{spec.code} is missing a summary"

    def test_family_property(self):
        assert get_rule("det001").family == "DET"

    def test_unknown_rule_raises(self):
        with pytest.raises(ConfigurationError):
            get_rule("ZZZ999")


class TestSelection:
    def test_family_token_selects_whole_family(self):
        codes = {spec.code for spec in select_rules(["DET"])}
        assert codes == {"DET001", "DET002", "DET003", "DET004", "DET005"}

    def test_ignore_wins_over_select(self):
        codes = {spec.code for spec in select_rules(["DET"], ["DET003"])}
        assert "DET003" not in codes and "DET001" in codes

    def test_unknown_select_token_raises(self):
        with pytest.raises(ConfigurationError, match="NOPE"):
            select_rules(["NOPE"])

    def test_unknown_ignore_token_raises(self):
        with pytest.raises(ConfigurationError, match="--ignore"):
            select_rules(None, ["TYPO001"])


class TestCustomRule:
    def test_register_analyze_unregister(self):
        @register_rule("TST001", summary="no variables named forbidden")
        def check_forbidden(module):
            for node in module.walk(ast.Name):
                if node.id == "forbidden":
                    yield module.finding("TST001", node, "rename this")

        try:
            findings = analyze_source("forbidden = 1\n", select=["TST001"])
            assert [f.rule for f in findings] == ["TST001"]
            waived = analyze_source(
                "forbidden = 1  # repro: allow[TST001] reason=custom-rule waiver fixture\n",
                select=["TST001"],
            )
            assert waived == []
        finally:
            unregister_rule("TST001")
        assert "TST001" not in available_rules()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_rule("DET001", summary="duplicate")(lambda module: [])
