"""OBS rule fixtures: one violating, one clean, one waived per rule."""

import textwrap

from repro.analysis import analyze_source


def codes(findings):
    return [f.rule for f in findings]


def run(source, path="src/repro/example.py", **kwargs):
    return analyze_source(textwrap.dedent(source), path=path, **kwargs)


class TestOBS001DirectStopwatch:
    def test_violating_perf_counter(self):
        # (DET003 flags the same call as a wall-clock hazard; scope to
        # the OBS family to test this rule's own finding.)
        findings = run(
            """
            import time

            start = time.perf_counter()
            """,
            select=["OBS"],
        )
        assert codes(findings) == ["OBS001"]
        assert "repro.obs" in findings[0].message

    def test_violating_monotonic(self):
        findings = run("import time\nstamp = time.monotonic()\n", select=["OBS"])
        assert codes(findings) == ["OBS001"]

    def test_violating_ns_variants(self):
        findings = run(
            """
            import time

            a = time.perf_counter_ns()
            b = time.monotonic_ns()
            c = time.process_time()
            """,
            select=["OBS"],
        )
        assert codes(findings) == ["OBS001", "OBS001", "OBS001"]

    def test_clean_obs_monotonic(self):
        findings = run(
            """
            from repro import obs

            start = obs.monotonic()
            """
        )
        assert findings == []

    def test_clean_time_time_is_not_obs001(self):
        # Calendar clocks are DET003's concern, not an observability
        # escape; OBS001 must not double-report them.
        findings = run("import time\nstamp = time.time()\n", select=["OBS"])
        assert findings == []

    def test_waived_with_reason(self):
        findings = run(
            """
            import time

            start = time.perf_counter()  # repro: allow[OBS001,DET003] reason=standalone reporting path outside the telemetry layer
            """
        )
        assert findings == []

    def test_sanctioned_clock_module_is_waived_in_tree(self):
        # The one wrapper the layer is built on carries its own inline
        # waiver; the analyzer over the real file must stay clean.
        from pathlib import Path

        import repro.obs.clock as clock

        source = Path(clock.__file__).read_text(encoding="utf-8")
        findings = analyze_source(source, path="src/repro/obs/clock.py")
        assert findings == []
