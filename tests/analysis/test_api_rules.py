"""API hygiene rule fixtures."""

import textwrap

from repro.analysis import analyze_source


def codes(findings):
    return [f.rule for f in findings]


def run(source, path="src/repro/example.py", **kwargs):
    return analyze_source(textwrap.dedent(source), path=path, **kwargs)


class TestAPI001BlanketExcept:
    def test_violating_except_exception(self):
        findings = run(
            """
            def load(path: str) -> str:
                try:
                    return open(path).read()
                except Exception:
                    return ""
            """
        )
        assert codes(findings) == ["API001"]

    def test_violating_bare_except(self):
        findings = run(
            """
            def load(path: str) -> str:
                try:
                    return open(path).read()
                except:
                    return ""
            """
        )
        assert codes(findings) == ["API001"]

    def test_clean_narrow_except(self):
        findings = run(
            """
            def load(path: str) -> str:
                try:
                    return open(path).read()
                except (OSError, ValueError):
                    return ""
            """
        )
        assert findings == []

    def test_waived(self):
        findings = run(
            """
            def shield(callback) -> None:  # repro: allow[API003] reason=fixture brevity
                try:
                    callback()
                # repro: allow[API001] reason=cancel in-flight work on any failure, then re-raise
                except Exception:
                    raise
            """
        )
        assert findings == []


class TestAPI002MutableDefaults:
    def test_violating_list_default(self):
        findings = run(
            """
            def collect(items: list = []) -> list:
                return items
            """
        )
        assert codes(findings) == ["API002"]

    def test_violating_dict_call_default(self):
        findings = run(
            """
            def configure(options: dict = dict()) -> dict:
                return options
            """
        )
        assert codes(findings) == ["API002"]

    def test_clean_none_default(self):
        findings = run(
            """
            def collect(items: list = None) -> list:
                return items or []
            """
        )
        assert findings == []

    def test_waived(self):
        findings = run(
            """
            def collect(items: list = []) -> list:  # repro: allow[API002] reason=intentional shared accumulator fixture
                return items
            """
        )
        assert findings == []


class TestAPI003MissingTypeHints:
    def test_violating_unannotated_public_function(self):
        findings = run(
            """
            def total(values):
                return sum(values)
            """
        )
        # One finding for the unannotated parameter, one for the missing
        # return annotation.
        assert codes(findings) == ["API003", "API003"]

    def test_clean_private_function_is_skipped(self):
        findings = run(
            """
            def _total(values):
                return sum(values)
            """
        )
        assert findings == []

    def test_clean_fully_annotated(self):
        findings = run(
            """
            def total(values: list) -> int:
                return sum(values)
            """
        )
        assert findings == []

    def test_waived(self):
        findings = run(
            """
            def total(values):  # repro: allow[API003] reason=duck-typed numeric protocol, annotation would lie
                return sum(values)
            """
        )
        assert findings == []
