"""Baseline round-trips, plus the meta-test: the committed baseline must
match a fresh analyzer run over ``src/`` exactly (zero un-baselined
findings), so the gate can never drift silently."""

import json
from pathlib import Path

from repro.analysis import Baseline, analyze_paths, analyze_source

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestBaselineRoundTrip:
    def test_save_load_partition(self, tmp_path):
        findings = analyze_source("import random\n", path="src/repro/example.py")
        assert len(findings) == 1
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        new, baselined = loaded.partition(findings)
        assert new == []
        assert baselined == findings

    def test_partition_flags_unknown_fingerprints(self, tmp_path):
        old = analyze_source("import random\n", path="src/repro/example.py")
        fresh = analyze_source(
            "import random\nfrom random import shuffle\n",
            path="src/repro/example.py",
        )
        new, baselined = Baseline.from_findings(old).partition(fresh)
        assert len(baselined) == 1
        assert len(new) == 1
        assert new[0].snippet == "from random import shuffle"

    def test_fingerprints_survive_line_moves(self):
        before = analyze_source("import random\n", path="src/repro/example.py")
        after = analyze_source(
            '"""Docstring pushes the import down."""\n\n\nimport random\n',
            path="src/repro/example.py",
        )
        assert before[0].fingerprint == after[0].fingerprint
        assert before[0].line != after[0].line


class TestCommittedBaseline:
    def test_committed_baseline_exists_and_parses(self):
        path = REPO_ROOT / "analysis-baseline.json"
        assert path.is_file(), "analysis-baseline.json must be committed at the repo root"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert isinstance(payload["findings"], list)

    def test_fresh_run_matches_committed_baseline_exactly(self):
        """The lint gate is honest: a fresh run over the trees CI lints
        (src/, benchmarks/, examples/) yields exactly the grandfathered
        fingerprints — no new findings, no stale entries."""
        baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
        findings = analyze_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"],
            root=REPO_ROOT,
        )
        new, baselined = baseline.partition(findings)
        assert new == [], "un-baselined findings — fix or waive them:\n" + "\n".join(
            f.render() for f in new
        )
        fresh_prints = {f.fingerprint for f in findings}
        stale = set(baseline.entries) - fresh_prints
        assert not stale, f"baseline entries no longer produced: {sorted(stale)}"
