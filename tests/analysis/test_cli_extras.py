"""The CLI surface added with the project pass: the ``rules`` catalog
subcommand, SARIF output, and the incremental-cache flags."""

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.registry import rule_specs
from repro.analysis.sarif import SARIF_VERSION, sarif_report
from repro.analysis.finding import Finding


@pytest.fixture
def violating_file(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(
        "import time\n\n\ndef stamp() -> float:\n    return time.time()\n",
        encoding="utf-8",
    )
    return path


class TestRulesSubcommand:
    def test_catalog_renders_every_rule(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for spec in rule_specs():
            assert spec.code in out
            assert f"[{spec.family}, {spec.scope} scope]" in out
            assert f"# repro: allow[{spec.code}]" in out

    def test_catalog_shows_both_scopes(self, capsys):
        main(["rules"])
        out = capsys.readouterr().out
        assert "module scope" in out
        assert "project scope" in out

    def test_json_catalog(self, capsys):
        assert main(["rules", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {entry["code"] for entry in payload["rules"]}
        assert {"DET001", "PAR001", "IMP001"} <= codes
        for entry in payload["rules"]:
            assert entry["doc"], f"{entry['code']} has an empty catalog doc"
            assert entry["waiver"].startswith("# repro: allow[")

    def test_rules_takes_no_paths(self, capsys):
        assert main(["rules", "src"]) == 2

    def test_every_rule_has_a_doc(self):
        """Meta-test: a rule without a docstring has no catalog entry."""
        for spec in rule_specs():
            assert spec.doc.strip(), f"{spec.code} check function is missing its docstring"
            assert spec.summary.strip(), f"{spec.code} is missing a summary"


class TestSarifOutput:
    def test_terminal_sarif_format(self, violating_file, capsys):
        code = main([str(violating_file), "--no-baseline", "--no-cache", "--format", "sarif"])
        assert code == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == SARIF_VERSION
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        results = run["results"]
        assert any(result["ruleId"] == "DET003" for result in results)
        assert all(result["baselineState"] == "new" for result in results)

    def test_output_format_alias(self, violating_file, capsys):
        code = main(
            [str(violating_file), "--no-baseline", "--no-cache", "--output-format", "sarif"]
        )
        assert code == 1
        assert json.loads(capsys.readouterr().out)["version"] == SARIF_VERSION

    def test_sarif_file_written_alongside_text_output(self, violating_file, tmp_path, capsys):
        sarif_path = tmp_path / "findings.sarif"
        json_path = tmp_path / "findings.json"
        main(
            [
                str(violating_file),
                "--no-baseline",
                "--no-cache",
                "--sarif",
                str(sarif_path),
                "--output",
                str(json_path),
            ]
        )
        capsys.readouterr()
        log = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert log["runs"][0]["results"]
        assert json.loads(json_path.read_text(encoding="utf-8"))["counts"]["new"] >= 1

    def test_result_locations_are_one_based(self):
        finding = Finding(
            rule="DET003", path="src/mod.py", line=5, column=0, message="m", snippet="s",
            fingerprint="abc",
        )
        log = sarif_report([finding])
        location = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/mod.py"
        assert location["region"]["startLine"] == 5
        assert location["region"]["startColumn"] == 1

    def test_rules_catalog_covers_engine_rules(self):
        log = sarif_report([])
        ids = {rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]}
        assert {"SYN001", "WVR001", "PAR001", "IMP001"} <= ids

    def test_baselined_findings_marked_unchanged(self):
        finding = Finding(
            rule="DET003", path="src/mod.py", line=5, column=0, message="m", snippet="s",
        )
        log = sarif_report([], [finding])
        assert log["runs"][0]["results"][0]["baselineState"] == "unchanged"


class TestCacheFlags:
    def test_summary_reports_cache_stats(self, violating_file, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        main([str(violating_file), "--no-baseline", "--quiet"])
        first = capsys.readouterr().out
        assert "(0/1 cached, 1 parsed)" in first
        main([str(violating_file), "--no-baseline", "--quiet"])
        second = capsys.readouterr().out
        assert "(1/1 cached, 0 parsed)" in second
        assert (tmp_path / ".repro-analysis-cache.json").is_file()

    def test_no_cache_never_writes_the_file(self, violating_file, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        main([str(violating_file), "--no-baseline", "--no-cache", "--quiet"])
        capsys.readouterr()
        assert not (tmp_path / ".repro-analysis-cache.json").exists()

    def test_cache_path_flag_relocates_the_file(self, violating_file, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "elsewhere.json"
        main([str(violating_file), "--no-baseline", "--cache", str(target), "--quiet"])
        capsys.readouterr()
        assert target.is_file()
        assert not (tmp_path / ".repro-analysis-cache.json").exists()
