"""NUM rule fixtures: one violating, one clean, one waived per rule."""

import textwrap

from repro.analysis import analyze_source


def codes(findings):
    return [f.rule for f in findings]


def run(source, path="src/repro/example.py", **kwargs):
    # Scope to the family under test so fixture scaffolding (unannotated
    # defs, etc.) does not trip unrelated rules.
    kwargs.setdefault("select", ["NUM"])
    return analyze_source(textwrap.dedent(source), path=path, **kwargs)


class TestNUM001AdvancedIndexGatherReduction:
    def test_violating_fancy_index_sum(self):
        findings = run(
            """
            def energy(lut, old, new):
                return lut[old, new].sum()
            """
        )
        assert codes(findings) == ["NUM001"]
        assert "gather" in findings[0].message or "indexing" in findings[0].message

    def test_violating_np_sum_of_gather(self):
        findings = run(
            """
            import numpy as np

            def total(costs, idx):
                return np.sum(costs[idx])
            """
        )
        assert codes(findings) == ["NUM001"]

    def test_violating_mean_of_gather(self):
        findings = run(
            """
            def avg(values, mask_idx):
                return values[mask_idx].mean()
            """
        )
        assert codes(findings) == ["NUM001"]

    def test_clean_basic_slice(self):
        findings = run(
            """
            def head_total(values):
                return values[:16].sum()
            """
        )
        assert findings == []

    def test_clean_contiguous_take(self):
        findings = run(
            """
            import numpy as np

            def total(costs, idx):
                return np.ascontiguousarray(np.take(costs, idx)).sum()
            """
        )
        assert findings == []

    def test_waived(self):
        findings = run(
            """
            def energy(lut, old, new):
                return lut[old, new].sum()  # repro: allow[NUM001] reason=scalar oracle, order-independent ints
            """
        )
        assert findings == []


class TestNUM002BoolSumWithoutDtype:
    def test_violating_comparison_sum(self):
        findings = run(
            """
            def count_changed(a, b):
                return (a != b).sum()
            """
        )
        assert codes(findings) == ["NUM002"]
        assert "dtype" in findings[0].message

    def test_clean_explicit_dtype(self):
        findings = run(
            """
            import numpy as np

            def count_changed(a, b):
                return (a != b).sum(dtype=np.int64)
            """
        )
        assert findings == []

    def test_waived(self):
        findings = run(
            """
            def count(mask_a, mask_b):
                return (mask_a & ~mask_b).sum()
            """
        )
        # Bitwise ops on ints are not flagged; only boolean-producing
        # comparisons / BoolOps / `not` are.
        assert findings == []


class TestNUM003FloatEquality:
    def test_violating_float_eq(self):
        findings = run(
            """
            def is_half(x):
                return x == 0.5
            """
        )
        assert codes(findings) == ["NUM003"]

    def test_violating_float_ne(self):
        findings = run("flag = y != 1.5\n")
        assert codes(findings) == ["NUM003"]

    def test_clean_int_eq(self):
        assert run("flag = n == 3\n") == []

    def test_clean_float_inequality(self):
        assert run("flag = x < 0.5\n") == []

    def test_waived(self):
        findings = run(
            "guard = denom == 0.0  # repro: allow[NUM003] reason=exact-zero division guard\n"
        )
        assert findings == []
