"""RES rule fixtures: unbounded retry loops vs the sanctioned shapes."""

import textwrap

from repro.analysis import analyze_source


def codes(findings):
    return [f.rule for f in findings]


def run(source, path="src/repro/example.py", **kwargs):
    kwargs.setdefault("select", ["RES"])
    return analyze_source(textwrap.dedent(source), path=path, **kwargs)


class TestRES001UnboundedRetryLoop:
    def test_violating_submit_loop(self):
        findings = run(
            """
            def keep_trying(pool, job):
                while True:
                    future = pool.submit(job)
                    try:
                        return future.result()
                    except RuntimeError:
                        pass
            """
        )
        assert codes(findings) == ["RES001"]
        assert "budget" in findings[0].message

    def test_violating_sleep_loop(self):
        findings = run(
            """
            import time


            def poll(check):
                while 1:
                    if check():
                        return
                    time.sleep(0.5)
            """
        )
        assert codes(findings) == ["RES001"]

    def test_clean_bounded_for_loop(self):
        findings = run(
            """
            import time


            def bounded(pool, job, retries):
                for attempt in range(retries + 1):
                    try:
                        return pool.submit(job).result()
                    except RuntimeError:
                        time.sleep(0.1)
                return None
            """
        )
        assert findings == []

    def test_clean_while_true_with_attempt_budget(self):
        findings = run(
            """
            import time


            def capped(pool, job):
                attempt = 0
                while True:
                    try:
                        return pool.submit(job).result()
                    except RuntimeError:
                        attempt += 1
                        if attempt > 3:
                            raise
                        time.sleep(0.1)
            """
        )
        assert findings == []

    def test_clean_conditional_while_loop(self):
        # The executor's own shape: bounded by real state, not a constant.
        findings = run(
            """
            def drain(pool, ready, in_flight):
                while ready or in_flight:
                    pool.submit(ready.pop())
            """
        )
        assert findings == []

    def test_clean_event_loop_without_resubmission(self):
        findings = run(
            """
            def serve(queue):
                while True:
                    item = queue.get()
                    if item is None:
                        break
            """
        )
        assert findings == []

    def test_waived_with_reason(self):
        findings = run(
            """
            import time


            def heartbeat():
                while True:  # repro: allow[RES001] reason=intentional daemon heartbeat, terminated by process shutdown
                    time.sleep(30.0)
            """
        )
        assert findings == []

    def test_real_executor_module_stays_clean(self):
        from pathlib import Path

        import repro.campaign.executor as executor

        source = Path(executor.__file__).read_text(encoding="utf-8")
        findings = analyze_source(
            source, path="src/repro/campaign/executor.py", select=["RES"]
        )
        assert findings == []
