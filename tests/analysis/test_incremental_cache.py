"""The incremental analysis cache: warm runs skip re-parsing.

The cache keys each file by content hash plus the rule-set signature, and
stores pass-1 findings, the module summary, and the waiver-coverage map —
enough for a warm run to skip parsing entirely while the (cheap,
summary-based) project pass still sees every module.
"""

import json

from repro.analysis.cache import AnalysisCache, ruleset_signature
from repro.analysis.engine import run_analysis


def _write_tree(tmp_path):
    pkg = tmp_path / "src" / "mypkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "clean.py").write_text(
        "def double(value: int) -> int:\n    return 2 * value\n", encoding="utf-8"
    )
    (pkg / "dirty.py").write_text(
        "import time\n\n\ndef stamp() -> float:\n    return time.time()\n",
        encoding="utf-8",
    )
    return pkg


class TestWarmRuns:
    def test_cold_then_warm_hits_every_file(self, tmp_path):
        _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        assert cold.stats.files == 3
        assert cold.stats.parsed == 3
        assert cold.stats.cache_hits == 0

        warm = run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        assert warm.stats.files == 3
        assert warm.stats.parsed == 0
        assert warm.stats.cache_hits == 3
        # Identical findings either way, fingerprints included.
        assert [f.to_json() for f in warm.findings] == [f.to_json() for f in cold.findings]

    def test_editing_one_file_reparses_only_it(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)

        (pkg / "clean.py").write_text(
            "def triple(value: int) -> int:\n    return 3 * value\n", encoding="utf-8"
        )
        warm = run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        assert warm.stats.parsed == 1
        assert warm.stats.cache_hits == 2

    def test_rule_selection_change_invalidates_cache(self, tmp_path):
        _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        narrowed = run_analysis(
            [tmp_path / "src"], root=tmp_path, cache_path=cache, select=["DET"]
        )
        assert narrowed.stats.cache_hits == 0
        assert narrowed.stats.parsed == 3

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        cache.write_text("{not json", encoding="utf-8")
        warm = run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        assert warm.stats.cache_hits == 0
        assert warm.stats.parsed == 3
        # And the cache healed: the next run is warm again.
        healed = run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        assert healed.stats.cache_hits == 3

    def test_cached_findings_keep_gating(self, tmp_path):
        """A finding in an unchanged (cached) file must still be reported."""
        _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        assert "DET003" in [f.rule for f in cold.findings]
        warm = run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        assert "DET003" in [f.rule for f in warm.findings]

    def test_deleted_file_pruned_from_cache(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        (pkg / "dirty.py").unlink()
        run_analysis([tmp_path / "src"], root=tmp_path, cache_path=cache)
        payload = json.loads(cache.read_text(encoding="utf-8"))
        assert not any("dirty.py" in key for key in payload["files"])

    def test_project_findings_survive_warm_runs(self, tmp_path):
        """PAR001 crosses two modules; both cached, the finding must persist."""
        pkg = tmp_path / "src" / "mypkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "worker.py").write_text(
            "from mypkg.state import remember\n\n\n"
            '@register_task("cell")\n'
            "def run_cell(kind: str) -> list:\n"
            "    remember(kind)\n"
            "    return []\n",
            encoding="utf-8",
        )
        (pkg / "state.py").write_text(
            "_SEEN = []\n\n\ndef remember(kind: str) -> None:\n    _SEEN.append(kind)\n",
            encoding="utf-8",
        )
        cache = tmp_path / "cache.json"
        cold = run_analysis(
            [tmp_path / "src"], root=tmp_path, cache_path=cache, select=["PAR001"]
        )
        assert [f.rule for f in cold.findings] == ["PAR001"]
        warm = run_analysis(
            [tmp_path / "src"], root=tmp_path, cache_path=cache, select=["PAR001"]
        )
        assert warm.stats.cache_hits == 3
        assert [f.to_json() for f in warm.findings] == [f.to_json() for f in cold.findings]

    def test_waiver_in_cached_file_still_suppresses_project_finding(self, tmp_path):
        pkg = tmp_path / "src" / "mypkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "state.py").write_text(
            "_SEEN = []\n\n\n"
            '@register_task("cell")\n'
            "def run_cell(kind: str) -> list:\n"
            "    # repro: allow[PAR001] reason=append is merged by the executor\n"
            "    _SEEN.append(kind)\n"
            "    return []\n",
            encoding="utf-8",
        )
        cache = tmp_path / "cache.json"
        cold = run_analysis(
            [tmp_path / "src"], root=tmp_path, cache_path=cache, select=["PAR001"]
        )
        assert cold.findings == []
        warm = run_analysis(
            [tmp_path / "src"], root=tmp_path, cache_path=cache, select=["PAR001"]
        )
        assert warm.stats.cache_hits == 2
        assert warm.findings == []


class TestSignature:
    def test_signature_depends_on_rule_keys(self):
        a = ruleset_signature(["DET001:module", "PAR001:project"])
        b = ruleset_signature(["DET001:module"])
        assert a != b

    def test_signature_is_order_independent(self):
        a = ruleset_signature(["DET001:module", "PAR001:project"])
        b = ruleset_signature(["PAR001:project", "DET001:module"])
        assert a == b

    def test_load_rejects_other_signature(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = AnalysisCache(signature="aaa")
        cache.save(path)
        reloaded = AnalysisCache.load(path, "bbb")
        assert reloaded.entries == {}
