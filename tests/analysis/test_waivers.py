"""Waiver mechanics: mandatory reasons, family waivers, comment forwarding."""

import textwrap

from repro.analysis import analyze_source
from repro.analysis.waivers import parse_waivers


def codes(findings):
    return [f.rule for f in findings]


def run(source, path="src/repro/example.py", **kwargs):
    return analyze_source(textwrap.dedent(source), path=path, **kwargs)


class TestReasonIsMandatory:
    def test_reasonless_waiver_reports_wvr001_and_keeps_finding(self):
        findings = run("import random  # repro: allow[DET002]\n")
        assert sorted(codes(findings)) == ["DET002", "WVR001"]
        wvr = next(f for f in findings if f.rule == "WVR001")
        assert "reason" in wvr.message

    def test_empty_reason_is_reasonless(self):
        findings = run("import random  # repro: allow[DET002] reason=\n")
        assert "WVR001" in codes(findings)

    def test_wvr001_cannot_be_waived_by_another_waiver(self):
        findings = run(
            "import random  # repro: allow[DET002, WVR001] reason=\n"
        )
        assert "WVR001" in codes(findings)


class TestWaiverScope:
    def test_family_waiver_covers_all_codes_in_family(self):
        findings = run(
            "import random  # repro: allow[DET] reason=family-wide waiver in fixture\n"
        )
        assert findings == []

    def test_waiver_does_not_cover_other_rules(self):
        findings = run(
            """
            import random  # repro: allow[NUM001] reason=wrong family on purpose

            x = 1
            """
        )
        assert codes(findings) == ["DET002"]

    def test_multiple_codes_in_one_waiver(self):
        findings = run(
            """
            def f(items=[]):  # repro: allow[API002, API003] reason=fixture exercising multi-code waivers
                return items
            """
        )
        assert findings == []

    def test_comment_only_waiver_forwards_to_next_code_line(self):
        findings = run(
            """
            # repro: allow[DET002] reason=standalone comment waiver covers the next code line
            import random
            """
        )
        assert findings == []

    def test_waiver_only_covers_its_own_line(self):
        findings = run(
            """
            import math  # repro: allow[DET002] reason=waiver stranded on the wrong line

            import random
            """
        )
        assert codes(findings) == ["DET002"]


class TestParseWaivers:
    def test_parses_codes_and_reason(self):
        waivers = parse_waivers(
            ["x = 1  # repro: allow[DET001, NUM002] reason=because fixtures"]
        )
        assert len(waivers) == 1
        assert waivers[0].codes == ("DET001", "NUM002")
        assert waivers[0].reason == "because fixtures"
        assert waivers[0].valid

    def test_non_waiver_comments_ignored(self):
        assert parse_waivers(["x = 1  # plain comment", "# repro: tracked"]) == []
