"""The project-scope PAR/IMP rules over synthetic fixture packages.

Each fixture is an in-memory module set fed through
:func:`repro.analysis.engine.analyze_sources`, exercising the hazard the
rule exists for: worker-side global mutation reached through the call
graph (PAR001), unpicklable callables handed to executors (PAR002),
module-level RNGs reached from worker code (PAR003), unsanctioned writes
to guarded package state (PAR004), and module-level import cycles
(IMP001).  The committed real tree stays quiet — that is pinned by
``test_baseline.py``'s exact-baseline meta-test, which runs both passes
over src/, benchmarks/, and examples/.
"""

import textwrap

from repro.analysis.engine import analyze_sources
from repro.analysis.project import ProjectContext, module_name_for_path, summarize_module

import ast


def _codes(findings):
    return [finding.rule for finding in findings]


def _source(text):
    return textwrap.dedent(text).lstrip("\n")


def _summaries(sources):
    out = []
    for path, text in sources.items():
        tree = ast.parse(_source(text))
        out.append(summarize_module(path, tree, _source(text).splitlines()))
    return out


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for_path("src/repro/utils/rng.py") == "repro.utils.rng"

    def test_package_init_collapses(self):
        assert module_name_for_path("src/repro/coding/__init__.py") == "repro.coding"


class TestPAR001TaskGlobalMutation:
    def test_direct_write_in_task_fires(self):
        findings = analyze_sources(
            {
                "src/mypkg/worker.py": _source(
                    """
                    _CACHE = {}

                    @register_task("fig9-cell")
                    def run_cell(kind: str, params: dict) -> list:
                        _CACHE[kind] = params
                        return []
                    """
                )
            },
            select=["PAR001"],
        )
        assert _codes(findings) == ["PAR001"]
        assert "_CACHE" in findings[0].message
        assert "fig9-cell" in findings[0].message

    def test_transitive_write_through_helper_chain_fires(self):
        findings = analyze_sources(
            {
                "src/mypkg/worker.py": _source(
                    """
                    from mypkg.state import remember

                    @register_task("fig7-cell")
                    def run_cell(kind: str, params: dict) -> list:
                        remember(kind)
                        return []
                    """
                ),
                "src/mypkg/state.py": _source(
                    """
                    _SEEN = []

                    def remember(kind: str) -> None:
                        _note(kind)

                    def _note(kind: str) -> None:
                        _SEEN.append(kind)
                    """
                ),
            },
            select=["PAR001"],
        )
        assert _codes(findings) == ["PAR001"]
        # Anchored at the write site in state.py, not at the task def.
        assert findings[0].path == "src/mypkg/state.py"
        assert "remember -> _note" in findings[0].message

    def test_obs_handles_are_sanctioned(self):
        findings = analyze_sources(
            {
                "src/mypkg/worker.py": _source(
                    """
                    _OBS_WRITES = Counter()

                    @register_task("fig7-cell")
                    def run_cell(kind: str, params: dict) -> list:
                        _OBS_WRITES.increment()
                        return []
                    """
                )
            },
            select=["PAR001"],
        )
        assert findings == []

    def test_local_variable_is_not_a_global_write(self):
        findings = analyze_sources(
            {
                "src/mypkg/worker.py": _source(
                    """
                    @register_task("fig7-cell")
                    def run_cell(kind: str, params: dict) -> list:
                        cache = {}
                        cache[kind] = params
                        return [cache]
                    """
                )
            },
            select=["PAR001"],
        )
        assert findings == []

    def test_waiver_at_write_site_covers_every_reaching_task(self):
        findings = analyze_sources(
            {
                "src/mypkg/worker.py": _source(
                    """
                    _LOADED = False

                    def _lazy_load() -> None:
                        global _LOADED
                        # repro: allow[PAR001] reason=idempotent lazy import latch
                        _LOADED = True

                    @register_task("fig7-cell")
                    def run_a(kind: str, params: dict) -> list:
                        _lazy_load()
                        return []

                    @register_task("fig9-cell")
                    def run_b(kind: str, params: dict) -> list:
                        _lazy_load()
                        return []
                    """
                )
            },
            select=["PAR001"],
        )
        assert findings == []


class TestPAR002ExecutorCapture:
    def test_lambda_submit_fires(self):
        findings = analyze_sources(
            {
                "src/mypkg/driver.py": _source(
                    """
                    def fan_out(executor, tasks: list) -> list:
                        return [executor.submit(lambda t: t.run(), task) for task in tasks]
                    """
                )
            },
            select=["PAR002"],
        )
        assert _codes(findings) == ["PAR002"]
        assert "lambda" in findings[0].message

    def test_nested_function_submit_fires(self):
        findings = analyze_sources(
            {
                "src/mypkg/driver.py": _source(
                    """
                    def fan_out(executor, tasks: list) -> list:
                        def run_one(task):
                            return task.run()
                        return [executor.submit(run_one, task) for task in tasks]
                    """
                )
            },
            select=["PAR002"],
        )
        assert _codes(findings) == ["PAR002"]
        assert "closure" in findings[0].message or "nested" in findings[0].message

    def test_bound_method_to_pool_map_fires(self):
        findings = analyze_sources(
            {
                "src/mypkg/driver.py": _source(
                    """
                    def fan_out(pool, runner, tasks: list) -> list:
                        return pool.map(runner.run_one, tasks)
                    """
                )
            },
            select=["PAR002"],
        )
        assert _codes(findings) == ["PAR002"]
        assert "bound method" in findings[0].message

    def test_module_level_function_is_clean(self):
        findings = analyze_sources(
            {
                "src/mypkg/driver.py": _source(
                    """
                    def run_one(task):
                        return task.run()

                    def fan_out(executor, tasks: list) -> list:
                        return [executor.submit(run_one, task) for task in tasks]
                    """
                )
            },
            select=["PAR002"],
        )
        assert findings == []


class TestPAR003SharedRNG:
    def test_module_rng_read_from_task_fires(self):
        findings = analyze_sources(
            {
                "src/mypkg/worker.py": _source(
                    """
                    _RNG = make_rng(2022)

                    @register_task("fig7-cell")
                    def run_cell(kind: str, params: dict) -> list:
                        return [_RNG.random()]
                    """
                )
            },
            select=["PAR003"],
        )
        assert _codes(findings) == ["PAR003"]
        assert "_RNG" in findings[0].message
        # Anchored at the module-level binding, line 1.
        assert findings[0].line == 1

    def test_rng_reached_from_submitted_function_fires(self):
        findings = analyze_sources(
            {
                "src/mypkg/driver.py": _source(
                    """
                    _RNG = default_rng(7)

                    def run_one(task):
                        return task.run(_RNG)

                    def fan_out(executor, tasks: list) -> list:
                        return [executor.submit(run_one, task) for task in tasks]
                    """
                )
            },
            select=["PAR003"],
        )
        assert _codes(findings) == ["PAR003"]

    def test_per_task_rng_is_clean(self):
        findings = analyze_sources(
            {
                "src/mypkg/worker.py": _source(
                    """
                    @register_task("fig7-cell")
                    def run_cell(kind: str, seed: int) -> list:
                        rng = make_rng(seed, kind)
                        return [rng.random()]
                    """
                )
            },
            select=["PAR003"],
        )
        assert findings == []


class TestPAR004GuardedPackageState:
    def test_unsanctioned_write_in_guarded_package_fires(self):
        findings = analyze_sources(
            {
                "src/repro/memctrl/scheduler.py": _source(
                    """
                    _PENDING = []

                    def enqueue(row: int) -> None:
                        _PENDING.append(row)
                    """
                )
            },
            select=["PAR004"],
        )
        assert _codes(findings) == ["PAR004"]
        assert "_PENDING" in findings[0].message

    def test_sanctioned_setter_is_clean(self):
        findings = analyze_sources(
            {
                "src/repro/memctrl/scheduler.py": _source(
                    """
                    _PENDING = []

                    def register_row(row: int) -> None:
                        _PENDING.append(row)

                    def reset_rows() -> None:
                        _PENDING.clear()

                    def _set_rows(rows: list) -> None:
                        global _PENDING
                        _PENDING = list(rows)
                    """
                )
            },
            select=["PAR004"],
        )
        assert findings == []

    def test_unguarded_package_not_checked(self):
        findings = analyze_sources(
            {
                "src/repro/sim/scratch.py": _source(
                    """
                    _PENDING = []

                    def enqueue(row: int) -> None:
                        _PENDING.append(row)
                    """
                )
            },
            select=["PAR004"],
        )
        assert findings == []


class TestIMP001ImportCycles:
    def test_two_module_cycle_fires_once(self):
        findings = analyze_sources(
            {
                "src/mypkg/alpha.py": _source(
                    """
                    from mypkg.beta import helper

                    def entry() -> None:
                        helper()
                    """
                ),
                "src/mypkg/beta.py": _source(
                    """
                    from mypkg.alpha import entry

                    def helper() -> None:
                        entry()
                    """
                ),
            },
            select=["IMP001"],
        )
        assert _codes(findings) == ["IMP001"]
        assert "mypkg.alpha -> mypkg.beta -> mypkg.alpha" in findings[0].message

    def test_lazy_in_function_import_breaks_the_cycle(self):
        findings = analyze_sources(
            {
                "src/mypkg/alpha.py": _source(
                    """
                    from mypkg.beta import helper

                    def entry() -> None:
                        helper()
                    """
                ),
                "src/mypkg/beta.py": _source(
                    """
                    def helper() -> None:
                        from mypkg.alpha import entry
                        entry()
                    """
                ),
            },
            select=["IMP001"],
        )
        assert findings == []

    def test_type_checking_import_is_not_an_edge(self):
        findings = analyze_sources(
            {
                "src/mypkg/alpha.py": _source(
                    """
                    from mypkg.beta import helper
                    """
                ),
                "src/mypkg/beta.py": _source(
                    """
                    from typing import TYPE_CHECKING

                    if TYPE_CHECKING:
                        from mypkg.alpha import entry
                    """
                ),
            },
            select=["IMP001"],
        )
        assert findings == []


class TestProjectContext:
    def test_call_graph_resolves_cross_module_calls(self):
        sources = {
            "src/mypkg/a.py": """
                from mypkg.b import helper

                def caller() -> None:
                    helper()
                """,
            "src/mypkg/b.py": """
                def helper() -> None:
                    pass
                """,
        }
        project = ProjectContext(_summaries(sources))
        caller = project.function("mypkg.a:caller")
        assert caller is not None
        assert "mypkg.b:helper" in project.call_edges(caller)

    def test_import_graph_edges(self):
        sources = {
            "src/mypkg/a.py": "from mypkg.b import helper\n",
            "src/mypkg/b.py": "x = 1\n",
        }
        project = ProjectContext(_summaries(sources))
        assert project.import_graph["mypkg.a"] == {"mypkg.b"}
        assert project.import_graph["mypkg.b"] == set()
