"""Waiver-placement edge cases: decorators, multi-line defs, families.

The forwarding rules under test (see
:class:`repro.analysis.waivers.WaiverTable`): a comment-only waiver
covers the next code line; when that line is a decorator, coverage
extends through the decorator chain to the ``def`` itself; and a
family-level code (``# repro: allow[PAR]``) covers every rule of the
family.
"""

import textwrap

from repro.analysis.engine import analyze_source, analyze_sources


def _source(text):
    return textwrap.dedent(text).lstrip("\n")


class TestDecoratedFunctions:
    def test_waiver_above_decorator_covers_the_def(self):
        findings = analyze_source(
            _source(
                """
                # repro: allow[API003] reason=registered callback, signature fixed by the protocol
                @memoised
                def handler(event):
                    return event
                """
            ),
            path="src/mod.py",
            select=["API003"],
        )
        assert findings == []

    def test_waiver_forwards_through_a_decorator_chain(self):
        findings = analyze_source(
            _source(
                """
                # repro: allow[API003] reason=registered callback, signature fixed by the protocol
                @first
                @second
                @third
                def handler(event):
                    return event
                """
            ),
            path="src/mod.py",
            select=["API003"],
        )
        assert findings == []

    def test_undecorated_neighbour_is_not_covered(self):
        findings = analyze_source(
            _source(
                """
                # repro: allow[API003] reason=registered callback, signature fixed by the protocol
                @memoised
                def handler(event):
                    return event


                def other(event):
                    return event
                """
            ),
            path="src/mod.py",
            select=["API003"],
        )
        assert findings, "the waiver must not cover the undecorated neighbour"
        assert {f.rule for f in findings} == {"API003"}
        assert all("other" in f.message for f in findings)


class TestMultiLineSignatures:
    def test_waiver_above_multi_line_def_covers_it(self):
        findings = analyze_source(
            _source(
                """
                # repro: allow[API003] reason=harness shim, params documented in the runbook
                def handler(
                    event,
                    context,
                    retries,
                ):
                    return event
                """
            ),
            path="src/mod.py",
            select=["API003"],
        )
        assert findings == []

    def test_waiver_on_the_def_line_itself_covers_it(self):
        findings = analyze_source(
            _source(
                """
                def handler(  # repro: allow[API003] reason=harness shim
                    event,
                    context,
                ):
                    return event
                """
            ),
            path="src/mod.py",
            select=["API003"],
        )
        assert findings == []


class TestFamilyWaivers:
    def test_family_waiver_covers_project_scope_rule(self):
        findings = analyze_sources(
            {
                "src/mypkg/worker.py": _source(
                    """
                    _SEEN = []

                    @register_task("cell")
                    def run_cell(kind: str) -> list:
                        # repro: allow[PAR] reason=executor merges per-task appends
                        _SEEN.append(kind)
                        return []
                    """
                )
            },
            select=["PAR"],
        )
        assert findings == []

    def test_family_waiver_does_not_leak_across_families(self):
        findings = analyze_sources(
            {
                "src/mypkg/alpha.py": _source(
                    """
                    # repro: allow[PAR] reason=wrong family on purpose
                    from mypkg.beta import helper
                    """
                ),
                "src/mypkg/beta.py": _source(
                    """
                    from mypkg.alpha import thing
                    """
                ),
            },
            select=["IMP001"],
        )
        assert [f.rule for f in findings] == ["IMP001"]
