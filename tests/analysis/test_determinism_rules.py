"""DET rule fixtures: one violating, one clean, one waived per rule."""

import textwrap

from repro.analysis import analyze_source


def codes(findings):
    return [f.rule for f in findings]


def run(source, path="src/repro/example.py", **kwargs):
    return analyze_source(textwrap.dedent(source), path=path, **kwargs)


class TestDET001UnseededNumpy:
    def test_violating_unseeded_default_rng(self):
        findings = run(
            """
            import numpy as np

            rng = np.random.default_rng()
            """
        )
        assert codes(findings) == ["DET001"]
        assert "unseeded" in findings[0].message

    def test_violating_seed_none_kwarg(self):
        findings = run("import numpy as np\nrng = np.random.default_rng(seed=None)\n")
        assert codes(findings) == ["DET001"]

    def test_violating_legacy_global_state(self):
        findings = run("import numpy as np\nx = np.random.randint(0, 10)\n")
        assert codes(findings) == ["DET001"]
        assert "global" in findings[0].message

    def test_clean_seeded_default_rng(self):
        findings = run("import numpy as np\nrng = np.random.default_rng(1234)\n")
        assert findings == []

    def test_clean_inside_whitelisted_module(self):
        findings = run(
            "import numpy as np\nrng = np.random.default_rng()\n",
            path="src/repro/utils/rng.py",
        )
        assert findings == []

    def test_waived_with_reason(self):
        findings = run(
            """
            import numpy as np

            rng = np.random.default_rng()  # repro: allow[DET001] reason=exploratory notebook helper
            """
        )
        assert findings == []


class TestDET002StdlibRandom:
    def test_violating_import(self):
        findings = run("import random\n")
        assert codes(findings) == ["DET002"]

    def test_violating_from_import(self):
        findings = run("from random import shuffle\n")
        assert codes(findings) == ["DET002"]

    def test_clean_unrelated_import(self):
        assert run("import math\n") == []

    def test_waived(self):
        findings = run(
            "import random  # repro: allow[DET002] reason=jitter for a benchmark warmup only\n"
        )
        assert findings == []


class TestDET003WallClock:
    def test_violating_time_time(self):
        findings = run("import time\nstamp = time.time()\n")
        assert codes(findings) == ["DET003"]

    def test_violating_datetime_now(self):
        findings = run("import datetime\nnow = datetime.datetime.now()\n")
        assert codes(findings) == ["DET003"]

    def test_clean_sleep_is_fine(self):
        assert run("import time\ntime.sleep(0.1)\n") == []

    def test_waived(self):
        # (OBS001 also flags a bare perf_counter; select DET to test
        # this family's waiver in isolation.)
        findings = run(
            "import time\nt0 = time.perf_counter()  # repro: allow[DET003] reason=benchmark timing only\n",
            select=["DET"],
        )
        assert findings == []


class TestDET004SetIteration:
    def test_violating_for_over_set_literal(self):
        findings = run("for x in {1, 2, 3}:\n    print(x)\n")
        assert codes(findings) == ["DET004"]

    def test_violating_list_of_set_call(self):
        findings = run("items = list(set([3, 1, 2]))\n")
        assert codes(findings) == ["DET004"]

    def test_violating_comprehension_over_set_algebra(self):
        findings = run("out = [x for x in {1, 2} | {3}]\n")
        assert codes(findings) == ["DET004"]

    def test_clean_sorted_set(self):
        assert run("for x in sorted({1, 2, 3}):\n    print(x)\n") == []

    def test_waived(self):
        findings = run(
            "seen = {1, 2}\nfor x in seen:  # repro: allow[DET004] reason=order-independent membership sweep\n    print(x)\n"
        )
        assert findings == []


class TestDET005UnseededMakeRngInExperiments:
    def test_violating_in_experiments(self):
        findings = run(
            "from repro.utils.rng import make_rng\nrng = make_rng()\n",
            path="src/repro/experiments/sweep.py",
        )
        assert codes(findings) == ["DET005"]

    def test_violating_in_campaign(self):
        findings = run(
            "from repro.utils import make_rng\nrng = make_rng(None)\n",
            path="src/repro/campaign/runner.py",
        )
        assert codes(findings) == ["DET005"]

    def test_clean_seeded_in_experiments(self):
        findings = run(
            "from repro.utils.rng import make_rng\nrng = make_rng(1234, 'faults')\n",
            path="src/repro/experiments/sweep.py",
        )
        assert findings == []

    def test_clean_unseeded_outside_scoped_paths(self):
        findings = run(
            "from repro.utils.rng import make_rng\nrng = make_rng()\n",
            path="scripts/scratch.py",
        )
        assert findings == []

    def test_waived(self):
        findings = run(
            "from repro.utils.rng import make_rng\n"
            "rng = make_rng()  # repro: allow[DET005] reason=interactive smoke entry point\n",
            path="src/repro/experiments/sweep.py",
        )
        assert findings == []
