"""The lint toolchain wiring: pyproject config, py.typed, CI job.

ruff and mypy are CI-only (the local container does not ship them); here
we pin down the configuration they run under, and execute them when they
happen to be installed.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
PYPROJECT = REPO_ROOT / "pyproject.toml"

STRICT_PACKAGES = (
    "repro.utils",
    "repro.coding",
    "repro.campaign",
    "repro.analysis",
    "repro.obs",
)


class TestProjectConfig:
    def test_pyproject_exists(self):
        assert PYPROJECT.is_file()

    def test_py_typed_marker_shipped(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").is_file()
        text = PYPROJECT.read_text(encoding="utf-8")
        assert "py.typed" in text, "py.typed must be declared as package data"

    def test_mypy_strict_packages_configured(self):
        text = PYPROJECT.read_text(encoding="utf-8")
        assert "[tool.mypy]" in text
        for package in STRICT_PACKAGES:
            assert f'"{package}.*"' in text, f"{package} missing from the strict override"
        assert "disallow_untyped_defs = true" in text

    def test_ruff_configured(self):
        text = PYPROJECT.read_text(encoding="utf-8")
        assert "[tool.ruff]" in text
        assert "[tool.ruff.lint]" in text

    def test_ci_lint_job_wired(self):
        workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text(encoding="utf-8")
        assert "lint:" in workflow
        assert "python -m repro.analysis src benchmarks examples" in workflow
        assert "--output analysis-findings.json --sarif analysis-findings.sarif" in workflow
        assert "github/codeql-action/upload-sarif" in workflow
        assert "ruff check src" in workflow
        assert (
            "mypy -p repro.utils -p repro.coding -p repro.campaign"
            " -p repro.analysis -p repro.obs" in workflow
        )


class TestToolExecution:
    def test_mypy_strict_packages(self):
        if shutil.which("mypy") is None:
            pytest.skip("mypy not installed in this environment (CI-only)")
        result = subprocess.run(
            ["mypy"] + [token for pkg in STRICT_PACKAGES for token in ("-p", pkg)],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_ruff_clean(self):
        if shutil.which("ruff") is None:
            pytest.skip("ruff not installed in this environment (CI-only)")
        result = subprocess.run(
            ["ruff", "check", "src"], cwd=REPO_ROOT, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_analyzer_gates_clean_via_module_entry(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 new finding(s)" in result.stdout
