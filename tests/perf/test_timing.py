"""Tests for the Table II system config and the Fig. 13 IPC model."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.config import SystemConfig, TABLE_II_SYSTEM
from repro.perf.timing import PerformanceModel


class TestSystemConfig:
    def test_table_ii_values(self):
        system = TABLE_II_SYSTEM
        assert system.cores == 4
        assert system.issue_width == 4
        assert system.frequency_ghz == 1.0
        assert system.row_bits == 512
        assert system.memory_gib == 2
        assert system.base_access_delay_ns == 84.0

    def test_total_banks(self):
        assert TABLE_II_SYSTEM.total_banks == 16

    def test_invalid_exposure(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(write_stall_exposure=1.5)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(frequency_ghz=0.0)


class TestPerformanceModel:
    def test_zero_delay_means_unit_ipc(self):
        model = PerformanceModel()
        result = model.normalized_ipc("lbm", 0.0, "baseline")
        assert result.normalized_ipc == pytest.approx(1.0)

    def test_ipc_decreases_with_delay(self):
        model = PerformanceModel()
        fast = model.normalized_ipc("lbm", 1.0)
        slow = model.normalized_ipc("lbm", 3.0)
        assert slow.normalized_ipc < fast.normalized_ipc

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            PerformanceModel().normalized_ipc("lbm", -1.0)

    def test_write_intensive_benchmarks_hurt_more(self):
        model = PerformanceModel()
        lbm = model.normalized_ipc("lbm", 2.0)     # 30 writebacks / kinst
        xz = model.normalized_ipc("xz", 2.0)       # 6 writebacks / kinst
        assert lbm.normalized_ipc < xz.normalized_ipc

    def test_impact_stays_small(self):
        # The paper's headline: even RCC's 2.6 ns encode delay costs < 3%
        # on average and VCC < 2%.
        model = PerformanceModel()
        results = model.sweep({"VCC": 1.8, "RCC": 2.6})
        vcc = [r.normalized_ipc for r in results if r.technique == "VCC"]
        rcc = [r.normalized_ipc for r in results if r.technique == "RCC"]
        assert sum(vcc) / len(vcc) > 0.98
        assert sum(rcc) / len(rcc) > 0.97
        assert min(rcc) > 0.9

    def test_rcc_never_faster_than_vcc(self):
        model = PerformanceModel()
        results = model.sweep({"VCC": 1.8, "RCC": 2.6})
        by_benchmark = {}
        for result in results:
            by_benchmark.setdefault(result.benchmark, {})[result.technique] = result.normalized_ipc
        for values in by_benchmark.values():
            assert values["RCC"] <= values["VCC"]

    def test_sweep_covers_requested_benchmarks(self):
        model = PerformanceModel()
        results = model.sweep({"VCC": 1.8}, benchmarks=["lbm", "mcf"])
        assert {r.benchmark for r in results} == {"lbm", "mcf"}

    def test_slowdown_percent_consistent(self):
        result = PerformanceModel().normalized_ipc("mcf", 2.0, "x")
        assert result.slowdown_percent == pytest.approx((1.0 / result.normalized_ipc - 1.0) * 100.0)
