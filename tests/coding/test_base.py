"""Tests for the encoder/context interfaces."""

import numpy as np
import pytest

from repro.coding.base import EncodedWord, WordContext, words_to_cell_matrix
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology


class TestWordContext:
    def test_word_bits_derived_from_cells(self):
        context = WordContext(old_cells=np.zeros(32, dtype=np.uint8), bits_per_cell=2)
        assert context.word_bits == 64

    def test_technology_property(self):
        mlc = WordContext(old_cells=np.zeros(4, dtype=np.uint8), bits_per_cell=2)
        slc = WordContext(old_cells=np.zeros(4, dtype=np.uint8), bits_per_cell=1)
        assert mlc.technology is CellTechnology.MLC
        assert slc.technology is CellTechnology.SLC

    def test_old_word_reconstruction(self):
        context = WordContext(old_cells=np.array([3, 2, 1, 0], dtype=np.uint8), bits_per_cell=2)
        assert context.old_word == 0b11100100

    def test_from_word_roundtrip(self):
        word = 0x0123456789ABCDEF
        context = WordContext.from_word(word, 64, 2)
        assert context.old_word == word

    def test_blank_is_zero(self):
        context = WordContext.blank(64, 2)
        assert context.old_word == 0
        assert len(context.old_cells) == 32

    def test_stuck_mask_shape_checked(self):
        with pytest.raises(ConfigurationError):
            WordContext(
                old_cells=np.zeros(4, dtype=np.uint8),
                stuck_mask=np.zeros(3, dtype=bool),
                bits_per_cell=2,
            )

    def test_invalid_bits_per_cell(self):
        with pytest.raises(ConfigurationError):
            WordContext(old_cells=np.zeros(4, dtype=np.uint8), bits_per_cell=3)


class TestEncodedWord:
    def test_negative_aux_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            EncodedWord(codeword=0, aux=0, aux_bits=-1, cost=0.0, technique="x")

    def test_valid_construction(self):
        word = EncodedWord(codeword=5, aux=1, aux_bits=2, cost=1.5, technique="x")
        assert word.codeword == 5
        assert word.aux == 1


class TestCellMatrix:
    def test_mlc_matrix(self):
        matrix = words_to_cell_matrix([0b11100100, 0b00011011], 8, 2)
        assert matrix.tolist() == [[3, 2, 1, 0], [0, 1, 2, 3]]

    def test_slc_matrix(self):
        matrix = words_to_cell_matrix([0b1010], 4, 1)
        assert matrix.tolist() == [[1, 0, 1, 0]]

    def test_matches_scalar_conversion(self, rng):
        from repro.pcm.array import word_to_cells

        words = [int(rng.integers(0, 1 << 63)) for _ in range(20)]
        matrix = words_to_cell_matrix(words, 64, 2)
        for row, word in zip(matrix, words):
            assert (row == word_to_cells(word, 64, 2)).all()
