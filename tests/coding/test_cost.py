"""Tests for the cost functions."""

import numpy as np
import pytest

from repro.coding.base import WordContext
from repro.coding.cost import (
    BitChangeCost,
    CellChangeCost,
    EnergyCost,
    LexicographicCost,
    OnesCost,
    SawCost,
    energy_then_saw,
    saw_then_energy,
)
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology
from repro.pcm.energy import MLCEnergyModel


def _context(old, stuck=None, bits_per_cell=2, old_aux=0):
    return WordContext(
        old_cells=np.array(old, dtype=np.uint8),
        stuck_mask=None if stuck is None else np.array(stuck, dtype=bool),
        bits_per_cell=bits_per_cell,
        old_aux=old_aux,
    )


class TestOnesCost:
    def test_counts_ones_in_cells(self):
        cost = OnesCost()
        context = _context([0, 0, 0, 0])
        new = np.array([0b00, 0b01, 0b10, 0b11], dtype=np.uint8)
        assert cost.cell_costs(new, context).tolist() == [0, 1, 1, 2]

    def test_word_cost_sums(self):
        cost = OnesCost()
        context = _context([0] * 4)
        assert cost.word_cost(np.array([3, 3, 0, 1]), context) == 5

    def test_aux_cost_is_hamming_weight(self):
        assert OnesCost().aux_cost(0b1011, 0, 4) == 3


class TestBitChangeCost:
    def test_counts_differing_bits(self):
        cost = BitChangeCost()
        context = _context([0b00, 0b01, 0b11, 0b10])
        new = np.array([0b11, 0b01, 0b00, 0b10], dtype=np.uint8)
        assert cost.cell_costs(new, context).tolist() == [2, 0, 2, 0]

    def test_aux_cost_counts_changes(self):
        assert BitChangeCost().aux_cost(0b1100, 0b1010, 4) == 2

    def test_matrix_shape(self):
        cost = BitChangeCost()
        context = _context([0] * 8)
        matrix = np.zeros((5, 8), dtype=np.uint8)
        assert cost.cell_costs_matrix(matrix, context).shape == (5, 8)


class TestCellChangeCost:
    def test_counts_changed_cells(self):
        cost = CellChangeCost()
        context = _context([1, 1, 1, 1])
        new = np.array([1, 2, 3, 1], dtype=np.uint8)
        assert cost.cell_costs(new, context).sum() == 2


class TestEnergyCost:
    def test_uses_mlc_lut(self):
        model = MLCEnergyModel(low_energy_pj=1.0, high_energy_pj=10.0)
        cost = EnergyCost(CellTechnology.MLC, mlc_model=model)
        context = _context([0, 0, 0, 0])
        new = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert cost.cell_costs(new, context).tolist() == [0.0, 10.0, 1.0, 10.0]

    def test_technology_mismatch_rejected(self):
        cost = EnergyCost(CellTechnology.MLC)
        context = _context([0, 1, 0, 1], bits_per_cell=1)
        with pytest.raises(ConfigurationError):
            cost.cell_costs(np.zeros(4, dtype=np.uint8), context)

    def test_slc_energy(self):
        cost = EnergyCost(CellTechnology.SLC)
        context = _context([0, 1, 0, 1], bits_per_cell=1)
        costs = cost.cell_costs(np.array([1, 0, 0, 1], dtype=np.uint8), context)
        assert costs[0] > 0 and costs[1] > 0 and costs[2] == 0 and costs[3] == 0

    def test_aux_cost_uses_aux_bit_energy(self):
        model = MLCEnergyModel(aux_bit_energy_pj=4.0)
        cost = EnergyCost(CellTechnology.MLC, mlc_model=model)
        assert cost.aux_cost(0b11, 0b00, 2) == pytest.approx(8.0)


class TestSawCost:
    def test_zero_without_fault_info(self):
        cost = SawCost()
        context = _context([0, 1, 2, 3])
        assert cost.cell_costs(np.array([3, 2, 1, 0], dtype=np.uint8), context).sum() == 0

    def test_counts_mismatched_stuck_cells(self):
        cost = SawCost()
        context = _context([0, 1, 2, 3], stuck=[True, True, False, False])
        new = np.array([0, 2, 0, 0], dtype=np.uint8)
        # cell0 stuck at 0, intended 0 -> ok; cell1 stuck at 1, intended 2 -> SAW
        assert cost.cell_costs(new, context).tolist() == [0.0, 1.0, 0.0, 0.0]

    def test_aux_cost_zero(self):
        assert SawCost().aux_cost(0b111, 0, 3) == 0.0


class TestLexicographic:
    def test_primary_dominates(self):
        combined = LexicographicCost(SawCost(), OnesCost(), scale=1000.0)
        context = _context([0, 0], stuck=[True, False])
        saw_free = np.array([0, 3], dtype=np.uint8)      # 2 ones, no SAW
        saw_bad = np.array([1, 0], dtype=np.uint8)       # 1 one, but 1 SAW
        assert combined.word_cost(saw_free, context) < combined.word_cost(saw_bad, context)

    def test_secondary_breaks_ties(self):
        combined = LexicographicCost(SawCost(), OnesCost(), scale=1000.0)
        context = _context([0, 0], stuck=[False, False])
        fewer_ones = np.array([0, 1], dtype=np.uint8)
        more_ones = np.array([3, 3], dtype=np.uint8)
        assert combined.word_cost(fewer_ones, context) < combined.word_cost(more_ones, context)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            LexicographicCost(SawCost(), OnesCost(), scale=0.0)

    def test_name_combines(self):
        assert saw_then_energy().name == "saw>energy"
        assert energy_then_saw().name == "energy>saw"

    def test_aux_cost_combines(self):
        combined = LexicographicCost(BitChangeCost(), OnesCost(), scale=10.0)
        # bit changes 0b11 vs 0b00 -> 2, ones of 0b11 -> 2: 2*10 + 2
        assert combined.aux_cost(0b11, 0b00, 2) == pytest.approx(22.0)
