"""Tests for the decorator-driven encoder plugin registry."""

import pytest

from repro.coding.cost import EnergyCost
from repro.coding.registry import (
    available_encoders,
    encoder_plugins,
    get_encoder_plugin,
    make_encoder,
    register_encoder,
    unregister_encoder,
)
from repro.coding.unencoded import UnencodedEncoder
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology


class TestRegistry:
    def test_all_names_listed(self):
        names = available_encoders()
        for expected in ["unencoded", "dbi", "fnw", "dbi/fnw", "flipcy", "bcc", "rcc", "vcc", "vcc-stored"]:
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_encoder("nonexistent")

    def test_case_insensitive(self):
        assert make_encoder("RCC", num_cosets=32).name == "rcc"

    @pytest.mark.parametrize("name", ["unencoded", "dbi", "fnw", "dbi/fnw", "flipcy", "bcc", "rcc", "vcc", "vcc-stored"])
    def test_every_encoder_roundtrips(self, name, rng):
        encoder = make_encoder(name, num_cosets=32)
        from repro.coding.base import WordContext

        data = int(rng.integers(0, 1 << 63))
        context = WordContext.from_word(int(rng.integers(0, 1 << 63)), 64, 2)
        encoded = encoder.encode(data, context)
        assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_cost_function_passed_through(self):
        cost = EnergyCost(CellTechnology.MLC)
        encoder = make_encoder("rcc", num_cosets=32, cost_function=cost)
        assert encoder.cost_function is cost

    def test_vcc_uses_requested_coset_count(self):
        encoder = make_encoder("vcc", num_cosets=128)
        assert encoder.num_cosets == 128

    def test_vcc_stored_uses_full_word(self):
        from repro.core.config import EncodeRegion

        encoder = make_encoder("vcc-stored", num_cosets=256)
        assert encoder.config.encode_region is EncodeRegion.FULL_WORD

    def test_vcc_generated_uses_right_plane(self):
        from repro.core.config import EncodeRegion

        encoder = make_encoder("vcc", num_cosets=256)
        assert encoder.config.encode_region is EncodeRegion.RIGHT_PLANE

    def test_aux_budget_matches_secded(self):
        # Both RCC and VCC with 256 candidates use exactly 8 auxiliary bits
        # per 64-bit word, matching the SECDED capacity budget of the paper.
        assert make_encoder("rcc", num_cosets=256).aux_bits == 8
        assert make_encoder("vcc", num_cosets=256).aux_bits == 8
        assert make_encoder("vcc-stored", num_cosets=256).aux_bits == 8


class TestPluginSystem:
    def test_plugins_expose_metadata(self):
        plugins = {plugin.name: plugin for plugin in encoder_plugins()}
        assert set(plugins) == {
            "unencoded", "dbi", "fnw", "flipcy", "bcc", "rcc", "vcc", "vcc-stored",
        }
        assert "dbi/fnw" in plugins["fnw"].aliases
        for plugin in plugins.values():
            assert plugin.description

    def test_alias_resolves_to_canonical_plugin(self):
        assert get_encoder_plugin("dbi/fnw") is get_encoder_plugin("fnw")
        assert get_encoder_plugin("FNW") is get_encoder_plugin("fnw")

    def test_register_custom_encoder_via_decorator(self):
        @register_encoder(
            "test-custom",
            aliases=("test-alias",),
            description="test plugin",
            params=("word_bits", "technology", "cost_function"),
        )
        class CustomEncoder(UnencodedEncoder):
            name = "test-custom"

        try:
            assert "test-custom" in available_encoders()
            assert "test-alias" in available_encoders()
            encoder = make_encoder("test-alias", word_bits=32)
            assert isinstance(encoder, CustomEncoder)
            assert encoder.word_bits == 32
        finally:
            unregister_encoder("test-custom")
        assert "test-custom" not in available_encoders()
        assert "test-alias" not in available_encoders()

    def test_register_custom_factory_function(self):
        @register_encoder("test-factory", description="factory plugin")
        def build(word_bits, num_cosets, technology, cost_function, seed):
            return UnencodedEncoder(word_bits, technology, cost_function)

        try:
            encoder = make_encoder("test-factory")
            assert isinstance(encoder, UnencodedEncoder)
        finally:
            unregister_encoder("test-factory")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_encoder("unencoded")(UnencodedEncoder)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ConfigurationError):
            register_encoder("test-dup", aliases=("dbi/fnw",))(UnencodedEncoder)
        assert "test-dup" not in available_encoders()

    def test_unknown_shared_param_rejected(self):
        with pytest.raises(ConfigurationError):
            register_encoder("test-bad-param", params=("not_a_param",))

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            unregister_encoder("never-registered")
