"""Tests for the encoder registry/factory."""

import pytest

from repro.coding.cost import EnergyCost
from repro.coding.registry import available_encoders, make_encoder
from repro.errors import ConfigurationError
from repro.pcm.cell import CellTechnology


class TestRegistry:
    def test_all_names_listed(self):
        names = available_encoders()
        for expected in ["unencoded", "dbi", "fnw", "dbi/fnw", "flipcy", "bcc", "rcc", "vcc", "vcc-stored"]:
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_encoder("nonexistent")

    def test_case_insensitive(self):
        assert make_encoder("RCC", num_cosets=32).name == "rcc"

    @pytest.mark.parametrize("name", ["unencoded", "dbi", "fnw", "dbi/fnw", "flipcy", "bcc", "rcc", "vcc", "vcc-stored"])
    def test_every_encoder_roundtrips(self, name, rng):
        encoder = make_encoder(name, num_cosets=32)
        from repro.coding.base import WordContext

        data = int(rng.integers(0, 1 << 63))
        context = WordContext.from_word(int(rng.integers(0, 1 << 63)), 64, 2)
        encoded = encoder.encode(data, context)
        assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_cost_function_passed_through(self):
        cost = EnergyCost(CellTechnology.MLC)
        encoder = make_encoder("rcc", num_cosets=32, cost_function=cost)
        assert encoder.cost_function is cost

    def test_vcc_uses_requested_coset_count(self):
        encoder = make_encoder("vcc", num_cosets=128)
        assert encoder.num_cosets == 128

    def test_vcc_stored_uses_full_word(self):
        from repro.core.config import EncodeRegion

        encoder = make_encoder("vcc-stored", num_cosets=256)
        assert encoder.config.encode_region is EncodeRegion.FULL_WORD

    def test_vcc_generated_uses_right_plane(self):
        from repro.core.config import EncodeRegion

        encoder = make_encoder("vcc", num_cosets=256)
        assert encoder.config.encode_region is EncodeRegion.RIGHT_PLANE

    def test_aux_budget_matches_secded(self):
        # Both RCC and VCC with 256 candidates use exactly 8 auxiliary bits
        # per 64-bit word, matching the SECDED capacity budget of the paper.
        assert make_encoder("rcc", num_cosets=256).aux_bits == 8
        assert make_encoder("vcc", num_cosets=256).aux_bits == 8
        assert make_encoder("vcc-stored", num_cosets=256).aux_bits == 8
