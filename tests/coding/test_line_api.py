"""Tests for the line-granularity batch encoding API.

The key property: for every registry encoder, ``encode_line`` must produce
exactly the codewords, auxiliary values, and costs of the word-at-a-time
reference loop (``encode_line_scalar``), including stuck-mask and
``old_aux`` cases, and ``decode_line`` must round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.base import (
    EncodedLine,
    EncodedWord,
    Encoder,
    LineContext,
    WordContext,
    cells_matrix_to_words,
    words_matrix_to_cells,
)
from repro.coding.cost import (
    BitChangeCost,
    EnergyCost,
    OnesCost,
    energy_then_saw,
    saw_then_energy,
)
from repro.coding.registry import available_encoders, make_encoder
from repro.errors import ConfigurationError, EncodingError
from repro.pcm.cell import CellTechnology
from repro.utils.bitops import random_word

ALL_ENCODERS = sorted(available_encoders())
WORDS_PER_LINE = 8


def _random_line(rng, word_bits=64):
    return [random_word(rng, word_bits) for _ in range(WORDS_PER_LINE)]


def _random_context(rng, encoder, stuck=False, old_aux=False):
    cells = encoder.cells_per_word
    levels = 2 ** encoder.bits_per_cell
    old = rng.integers(0, levels, size=(WORDS_PER_LINE, cells)).astype(np.uint8)
    stuck_mask = (rng.random((WORDS_PER_LINE, cells)) < 0.08) if stuck else None
    old_auxes = None
    if old_aux and encoder.aux_bits > 0:
        old_auxes = rng.integers(0, 1 << encoder.aux_bits, size=WORDS_PER_LINE)
    return LineContext(
        old_cells=old,
        stuck_mask=stuck_mask,
        bits_per_cell=encoder.bits_per_cell,
        old_auxes=old_auxes,
    )


class TestScalarBatchParity:
    @pytest.mark.parametrize("name", ALL_ENCODERS)
    @pytest.mark.parametrize("stuck,old_aux", [(False, False), (True, False), (True, True)])
    def test_parity_mlc(self, name, stuck, old_aux, rng):
        encoder = make_encoder(name, num_cosets=32, cost_function=energy_then_saw(), seed=5)
        context = _random_context(rng, encoder, stuck=stuck, old_aux=old_aux)
        words = _random_line(rng)
        batch = encoder.encode_line(words, context)
        scalar = encoder.encode_line_scalar(words, context)
        assert batch.codewords == scalar.codewords
        assert batch.auxes == scalar.auxes
        assert batch.costs == scalar.costs
        assert batch.technique == scalar.technique
        assert batch.aux_bits == scalar.aux_bits

    @pytest.mark.parametrize("name", ALL_ENCODERS)
    def test_parity_slc(self, name, rng):
        encoder = make_encoder(
            name, num_cosets=32, technology=CellTechnology.SLC,
            cost_function=BitChangeCost(), seed=5,
        )
        context = _random_context(rng, encoder, stuck=True)
        words = _random_line(rng)
        batch = encoder.encode_line(words, context)
        scalar = encoder.encode_line_scalar(words, context)
        assert batch.codewords == scalar.codewords
        assert batch.auxes == scalar.auxes
        assert batch.costs == scalar.costs

    @pytest.mark.parametrize("name", ALL_ENCODERS)
    @pytest.mark.parametrize("cost", [BitChangeCost, OnesCost, EnergyCost, saw_then_energy])
    def test_parity_across_cost_functions(self, name, cost, rng):
        encoder = make_encoder(name, num_cosets=16, cost_function=cost(), seed=9)
        context = _random_context(rng, encoder, stuck=True, old_aux=True)
        words = _random_line(rng)
        batch = encoder.encode_line(words, context)
        scalar = encoder.encode_line_scalar(words, context)
        assert batch.codewords == scalar.codewords
        assert batch.auxes == scalar.auxes
        assert batch.costs == scalar.costs

    @pytest.mark.parametrize("name", ALL_ENCODERS)
    def test_decode_line_round_trips(self, name, rng):
        encoder = make_encoder(name, num_cosets=32, seed=7)
        context = _random_context(rng, encoder, stuck=True, old_aux=True)
        words = _random_line(rng)
        encoded = encoder.encode_line(words, context)
        assert encoder.decode_line(encoded.codewords, encoded.auxes) == words

    @pytest.mark.parametrize("name", ALL_ENCODERS)
    def test_line_matches_per_word_encode(self, name, rng):
        # The batch result must agree with individually issued scalar calls.
        encoder = make_encoder(name, num_cosets=16, seed=3)
        context = _random_context(rng, encoder, stuck=True)
        words = _random_line(rng)
        encoded = encoder.encode_line(words, context)
        for index, word in enumerate(words):
            single = encoder.encode(word, context.word_context(index))
            assert encoded.word(index) == single


class TestWideAuxFallback:
    def test_fnw_64_partitions_matches_scalar(self, rng):
        # Regression: bit-granular FNW has aux_bits == 64, which overflows
        # the vectorized int64 flag packing; encode_line must fall back.
        from repro.coding.fnw import FNWEncoder

        encoder = FNWEncoder(64, 64, CellTechnology.SLC, BitChangeCost())
        assert encoder.aux_bits == 64
        context = _random_context(rng, encoder, stuck=True)
        words = _random_line(rng)
        batch = encoder.encode_line(words, context)
        scalar = encoder.encode_line_scalar(words, context)
        assert batch.codewords == scalar.codewords
        assert batch.auxes == scalar.auxes
        assert encoder.decode_line(batch.codewords, batch.auxes) == words


class _ScalarOnlyEncoder(Encoder):
    """A third-party-style encoder implementing only the word interface."""

    name = "third-party"

    @property
    def aux_bits(self) -> int:
        return 1

    def encode(self, data, context):
        inverted = data ^ ((1 << self.word_bits) - 1)
        return self._select_best([data, inverted], [0, 1], context)

    def decode(self, codeword, aux):
        return codeword ^ (((1 << self.word_bits) - 1) if aux else 0)


class TestScalarFallback:
    def test_default_encode_line_uses_scalar_loop(self, rng):
        encoder = _ScalarOnlyEncoder(64, CellTechnology.MLC, BitChangeCost())
        context = _random_context(rng, encoder, stuck=True)
        words = _random_line(rng)
        encoded = encoder.encode_line(words, context)
        assert isinstance(encoded, EncodedLine)
        assert encoded == encoder.encode_line_scalar(words, context)
        assert encoder.decode_line(encoded.codewords, encoded.auxes) == words

    def test_mismatched_geometry_rejected(self, rng):
        encoder = _ScalarOnlyEncoder(64, CellTechnology.MLC, BitChangeCost())
        context = LineContext.blank(words_per_line=4, word_bits=32, bits_per_cell=2)
        with pytest.raises(EncodingError):
            encoder.encode_line([1, 2, 3, 4], context)

    def test_word_count_mismatch_rejected(self, rng):
        encoder = _ScalarOnlyEncoder(64, CellTechnology.MLC, BitChangeCost())
        context = LineContext.blank(words_per_line=8)
        with pytest.raises(EncodingError):
            encoder.encode_line([1, 2, 3], context)

    def test_decode_line_length_mismatch_rejected(self):
        encoder = _ScalarOnlyEncoder(64, CellTechnology.MLC, BitChangeCost())
        with pytest.raises(EncodingError):
            encoder.decode_line([1, 2], [0])


class TestLineContext:
    def test_blank_geometry(self):
        context = LineContext.blank(words_per_line=8, word_bits=64, bits_per_cell=2)
        assert context.words_per_line == 8
        assert context.word_bits == 64
        assert context.old_cells.shape == (8, 32)
        assert np.array_equal(context.old_auxes, np.zeros(8, dtype=np.int64))

    def test_from_row_reshapes(self, rng):
        row = rng.integers(0, 4, size=256).astype(np.uint8)
        stuck = rng.random(256) < 0.1
        context = LineContext.from_row(row, 8, bits_per_cell=2, stuck_mask=stuck)
        assert context.old_cells.shape == (8, 32)
        assert context.stuck_mask.shape == (8, 32)
        assert np.array_equal(context.old_cells.reshape(-1), row)

    def test_word_context_round_trip(self, rng):
        old = rng.integers(0, 4, size=(8, 32)).astype(np.uint8)
        auxes = np.arange(8)
        context = LineContext(old_cells=old, bits_per_cell=2, old_auxes=auxes)
        word_ctx = context.word_context(3)
        assert isinstance(word_ctx, WordContext)
        assert np.array_equal(word_ctx.old_cells, old[3])
        assert word_ctx.old_aux == 3

    def test_from_contexts_stacks(self, rng):
        contexts = [
            WordContext(
                old_cells=rng.integers(0, 4, size=32).astype(np.uint8),
                bits_per_cell=2,
                old_aux=index,
            )
            for index in range(4)
        ]
        line = LineContext.from_contexts(contexts)
        assert line.words_per_line == 4
        for index in range(4):
            assert np.array_equal(line.old_cells[index], contexts[index].old_cells)
            assert line.old_auxes[index] == index

    def test_split_partitions(self, rng):
        old = rng.integers(0, 4, size=(8, 32)).astype(np.uint8)
        stuck = rng.random((8, 32)) < 0.1
        context = LineContext(old_cells=old, stuck_mask=stuck, bits_per_cell=2)
        split = context.split_partitions(4)
        assert split.old_cells.shape == (32, 8)
        assert split.stuck_mask.shape == (32, 8)
        assert np.array_equal(split.old_cells.reshape(8, 32), old)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            LineContext(old_cells=np.zeros(8, dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            LineContext(
                old_cells=np.zeros((2, 4), dtype=np.uint8),
                stuck_mask=np.zeros((2, 5), dtype=bool),
            )
        with pytest.raises(ConfigurationError):
            LineContext(
                old_cells=np.zeros((2, 4), dtype=np.uint8),
                old_auxes=np.zeros(3, dtype=np.int64),
            )


class TestAuxValidation:
    def test_zero_aux_bits_rejects_nonzero_aux(self):
        # Regression: aux=1 with aux_bits=0 used to slip through validation.
        with pytest.raises(ConfigurationError):
            EncodedWord(codeword=0, aux=1, aux_bits=0, cost=0.0, technique="x")

    def test_aux_must_fit_width(self):
        with pytest.raises(ConfigurationError):
            EncodedWord(codeword=0, aux=4, aux_bits=2, cost=0.0, technique="x")
        word = EncodedWord(codeword=0, aux=3, aux_bits=2, cost=0.0, technique="x")
        assert word.aux == 3

    def test_encoded_line_guards_aux(self):
        with pytest.raises(ConfigurationError):
            EncodedLine(
                codewords=(1, 2), auxes=(0, 1), aux_bits=0, costs=(0.0, 0.0), technique="x"
            )
        with pytest.raises(ConfigurationError):
            EncodedLine(
                codewords=(1, 2), auxes=(0, 4), aux_bits=2, costs=(0.0, 0.0), technique="x"
            )

    def test_encoded_line_shape_guards(self):
        with pytest.raises(ConfigurationError):
            EncodedLine(codewords=(1,), auxes=(0, 0), aux_bits=1, costs=(0.0,), technique="x")
        with pytest.raises(ConfigurationError):
            EncodedLine(codewords=(), auxes=(), aux_bits=1, costs=(), technique="x")

    def test_encoded_line_total_cost_and_views(self):
        line = EncodedLine(
            codewords=(1, 2), auxes=(0, 1), aux_bits=1, costs=(1.5, 2.5), technique="x"
        )
        assert line.cost == pytest.approx(4.0)
        assert line.words_per_line == 2
        assert line.word(1) == EncodedWord(
            codeword=2, aux=1, aux_bits=1, cost=2.5, technique="x"
        )


class TestCellMatrixHelpers:
    def test_words_matrix_round_trip(self, rng):
        words = rng.integers(0, 1 << 62, size=(3, 8), dtype=np.uint64)
        cells = words_matrix_to_cells(words, 64, 2)
        assert cells.shape == (3, 8, 32)
        for i in range(3):
            assert cells_matrix_to_words(cells[i], 2) == [int(w) for w in words[i]]

    def test_wide_word_fallback(self):
        words = [[1 << 100, 3]]
        cells = words_matrix_to_cells(words, 128, 2)
        assert cells.shape == (1, 2, 64)
        assert cells_matrix_to_words(cells[0], 2) == [1 << 100, 3]
