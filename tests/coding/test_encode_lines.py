"""Multi-line batch encoding: encode_lines vs. the per-line reference.

The contract of :meth:`repro.coding.base.Encoder.encode_lines` is that the
returned codewords, auxiliary values, and costs are *bit-identical* to
calling :meth:`encode_line` once per line — for every registry encoder,
both cell technologies, with stuck cells and non-trivial stored auxiliary
bits in play.  The same holds one layer down for
:meth:`repro.coding.cost.CostFunction.batch_line_cell_costs` against
per-line :meth:`line_cell_costs` calls.
"""

import numpy as np
import pytest

from repro.coding.base import (
    EncodedWord,
    Encoder,
    LineContext,
    stack_line_contexts,
)
from repro.coding.cost import (
    BitChangeCost,
    CellChangeCost,
    CostFunction,
    EnergyCost,
    OnesCost,
    SawCost,
    energy_then_saw,
    saw_then_energy,
)
from repro.coding.registry import available_encoders, make_encoder
from repro.errors import ConfigurationError, EncodingError
from repro.pcm.cell import CellTechnology
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng

WORDS_PER_LINE = 8
WORD_BITS = 64
LINES = 5


def _contexts(rng, technology, encoder, lines=LINES):
    cells = encoder.cells_per_word
    levels = technology.levels
    aux_limit = 1 << min(encoder.aux_bits, 62)
    contexts = []
    for _ in range(lines):
        contexts.append(
            LineContext(
                old_cells=rng.integers(0, levels, size=(WORDS_PER_LINE, cells)).astype(
                    np.uint8
                ),
                stuck_mask=rng.random((WORDS_PER_LINE, cells)) < 0.02,
                bits_per_cell=technology.bits_per_cell,
                old_auxes=rng.integers(0, aux_limit, size=WORDS_PER_LINE),
            )
        )
    return contexts


def _lines(rng, lines=LINES):
    return [
        [random_word(rng, WORD_BITS) for _ in range(WORDS_PER_LINE)]
        for _ in range(lines)
    ]


class TestEncodeLinesParity:
    @pytest.mark.parametrize("name", available_encoders())
    @pytest.mark.parametrize("technology", [CellTechnology.MLC, CellTechnology.SLC])
    @pytest.mark.parametrize("cost", ["saw-then-energy", "energy-then-saw"])
    def test_matches_per_line_encode_line(self, name, technology, cost):
        from repro.sim.harness import make_cost

        rng = make_rng(5, f"encode-lines-{name}-{technology.value}-{cost}")
        encoder = make_encoder(
            name,
            word_bits=WORD_BITS,
            num_cosets=16,
            technology=technology,
            cost_function=make_cost(cost, technology),
        )
        contexts = _contexts(rng, technology, encoder)
        lines = _lines(rng)
        batched = encoder.encode_lines(lines, contexts)
        assert len(batched) == LINES
        for line, context, encoded in zip(lines, contexts, batched):
            reference = encoder.encode_line(line, context)
            assert encoded.codewords == reference.codewords
            assert encoded.auxes == reference.auxes
            assert encoded.aux_bits == reference.aux_bits
            assert encoded.costs == reference.costs  # bit-identical floats
            assert encoded.technique == reference.technique

    @pytest.mark.parametrize("name", available_encoders())
    def test_decodes_back_to_data(self, name):
        rng = make_rng(6, f"decode-lines-{name}")
        encoder = make_encoder(name, word_bits=WORD_BITS, num_cosets=16)
        contexts = _contexts(rng, CellTechnology.MLC, encoder, lines=2)
        lines = _lines(rng, lines=2)
        for line, encoded in zip(lines, encoder.encode_lines(lines, contexts)):
            assert encoder.decode_line(encoded.codewords, encoded.auxes) == line

    def test_accepts_ndarray_word_matrix(self):
        rng = make_rng(7, "ndarray-words")
        encoder = make_encoder("rcc", word_bits=WORD_BITS, num_cosets=16)
        contexts = _contexts(rng, CellTechnology.MLC, encoder, lines=3)
        lines = _lines(rng, lines=3)
        matrix = np.array(lines, dtype=np.uint64)
        from_list = encoder.encode_lines(lines, contexts)
        from_array = encoder.encode_lines(matrix, contexts)
        assert [e.codewords for e in from_list] == [e.codewords for e in from_array]

    def test_third_party_encoder_uses_reference_loop(self):
        class XorEncoder(Encoder):
            """Minimal word-level-only encoder (no batch overrides)."""

            name = "xor-third-party"

            @property
            def aux_bits(self):
                return 0

            def encode(self, data, context):
                self._check_data(data)
                return EncodedWord(
                    codeword=data ^ 0x5A5A, aux=0, aux_bits=0, cost=1.0,
                    technique=self.name,
                )

            def decode(self, codeword, aux):
                return codeword ^ 0x5A5A

        encoder = XorEncoder(WORD_BITS, CellTechnology.MLC, BitChangeCost())
        rng = make_rng(8, "third-party")
        contexts = _contexts(rng, CellTechnology.MLC, encoder, lines=2)
        lines = _lines(rng, lines=2)
        batched = encoder.encode_lines(lines, contexts)
        for line, encoded in zip(lines, batched):
            assert list(encoded.codewords) == [w ^ 0x5A5A for w in line]

    def test_line_count_mismatch_rejected(self):
        rng = make_rng(9, "mismatch")
        encoder = make_encoder("flipcy", word_bits=WORD_BITS)
        contexts = _contexts(rng, CellTechnology.MLC, encoder, lines=2)
        with pytest.raises(EncodingError):
            encoder.encode_lines(_lines(rng, lines=3), contexts)
        with pytest.raises(EncodingError):
            encoder.encode_lines([], [])


ALL_COSTS = [
    OnesCost(),
    BitChangeCost(),
    CellChangeCost(),
    EnergyCost(CellTechnology.MLC),
    SawCost(),
    saw_then_energy(CellTechnology.MLC),
    energy_then_saw(CellTechnology.MLC),
]


class TestBatchLineCellCosts:
    @pytest.mark.parametrize("cost", ALL_COSTS, ids=lambda c: c.name)
    @pytest.mark.parametrize("with_stuck", [True, False])
    def test_matches_per_line_kernel(self, cost, with_stuck):
        rng = make_rng(11, f"batch-costs-{cost.name}-{with_stuck}")
        lines, candidates, words, cells = 4, 6, 8, 32
        new_cells = rng.integers(0, 4, size=(lines, candidates, words, cells)).astype(
            np.uint8
        )
        contexts = [
            LineContext(
                old_cells=rng.integers(0, 4, size=(words, cells)).astype(np.uint8),
                stuck_mask=(rng.random((words, cells)) < 0.05) if with_stuck else None,
                bits_per_cell=2,
            )
            for _ in range(lines)
        ]
        batched = cost.batch_line_cell_costs(new_cells, contexts)
        assert batched.shape == new_cells.shape
        for index, context in enumerate(contexts):
            per_line = cost.line_cell_costs(new_cells[index], context)
            assert np.array_equal(
                np.asarray(batched[index], dtype=np.float64),
                np.asarray(per_line, dtype=np.float64),
            )

    def test_non_cellwise_cost_falls_back_to_loop(self):
        class WeirdCost(CostFunction):
            """Depends on the whole candidate word: not cellwise."""

            name = "weird"

            def cell_costs_matrix(self, new_cells, context):
                new = np.asarray(new_cells, dtype=np.float64)
                return new + new.sum(axis=1, keepdims=True)

        cost = WeirdCost()
        assert not cost.cellwise
        assert cost.transition_tables([LineContext.blank()]) is None
        rng = make_rng(12, "weird-cost")
        new_cells = rng.integers(0, 4, size=(3, 2, 8, 32)).astype(np.uint8)
        contexts = [LineContext.blank() for _ in range(3)]
        batched = cost.batch_line_cell_costs(new_cells, contexts)
        for index, context in enumerate(contexts):
            assert np.array_equal(batched[index], cost.line_cell_costs(new_cells[index], context))

    def test_transition_tables_match_elementwise_pipeline(self):
        cost = saw_then_energy(CellTechnology.MLC)
        rng = make_rng(13, "tables")
        contexts = [
            LineContext(
                old_cells=rng.integers(0, 4, size=(8, 32)).astype(np.uint8),
                stuck_mask=rng.random((8, 32)) < 0.05,
                bits_per_cell=2,
            )
            for _ in range(2)
        ]
        tables = cost.transition_tables(contexts)
        assert tables.shape == (2, 8, 32, 4)
        for line, context in enumerate(contexts):
            for value in range(4):
                plane = np.full((1, 8, 32), value, dtype=np.uint8)
                expected = cost.line_cell_costs(plane, context)[0]
                assert np.array_equal(tables[line, :, :, value], expected)

    def test_shape_validation(self):
        cost = OnesCost()
        with pytest.raises(ConfigurationError):
            cost.batch_line_cell_costs(np.zeros((2, 8, 32), dtype=np.uint8), [])
        with pytest.raises(ConfigurationError):
            cost.batch_line_cell_costs(
                np.zeros((2, 3, 8, 32), dtype=np.uint8), [LineContext.blank()]
            )


class TestStackAndSplitHelpers:
    def test_stack_line_contexts_concatenates_words(self):
        rng = make_rng(14, "stack")
        contexts = [
            LineContext(
                old_cells=rng.integers(0, 4, size=(4, 16)).astype(np.uint8),
                stuck_mask=rng.random((4, 16)) < 0.1,
                bits_per_cell=2,
                old_auxes=rng.integers(0, 8, size=4),
            )
            for _ in range(3)
        ]
        stacked = stack_line_contexts(contexts)
        assert stacked.words_per_line == 12
        assert np.array_equal(
            stacked.old_cells, np.concatenate([c.old_cells for c in contexts])
        )
        assert np.array_equal(
            stacked.stuck_mask, np.concatenate([c.stuck_mask for c in contexts])
        )
        assert np.array_equal(
            stacked.old_auxes, np.concatenate([c.old_auxes for c in contexts])
        )

    def test_stack_rejects_mixed_geometry(self):
        narrow = LineContext.blank(words_per_line=4)
        wide = LineContext.blank(words_per_line=8)
        with pytest.raises(ConfigurationError):
            stack_line_contexts([narrow, wide])
        with pytest.raises(ConfigurationError):
            stack_line_contexts([])

    def test_empty_batch_rejected_by_cost_kernel(self):
        cost = BitChangeCost()
        with pytest.raises(ConfigurationError):
            cost.batch_line_cell_costs(np.zeros((0, 3, 8, 32), dtype=np.uint8), [])
