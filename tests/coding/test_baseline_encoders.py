"""Tests for the baseline encoders (unencoded, DBI, FNW, Flipcy, BCC, RCC)."""

import numpy as np
import pytest

from repro.coding.base import WordContext
from repro.coding.bcc import BCCEncoder
from repro.coding.cost import BitChangeCost, EnergyCost, OnesCost, SawCost
from repro.coding.dbi import DBIEncoder
from repro.coding.flipcy import FlipcyEncoder
from repro.coding.fnw import FNWEncoder
from repro.coding.rcc import RCCEncoder
from repro.coding.unencoded import UnencodedEncoder
from repro.errors import ConfigurationError, EncodingError
from repro.pcm.cell import CellTechnology


def _mlc_context(old_word=0, stuck=None, old_aux=0):
    return WordContext.from_word(old_word, 64, 2, stuck_mask=stuck, old_aux=old_aux)


class TestUnencoded:
    def test_identity(self, word64, mlc_context):
        encoder = UnencodedEncoder()
        encoded = encoder.encode(word64, mlc_context)
        assert encoded.codeword == word64
        assert encoded.aux_bits == 0
        assert encoder.decode(encoded.codeword, 0) == word64

    def test_cost_reported(self):
        encoder = UnencodedEncoder(cost_function=BitChangeCost())
        context = _mlc_context(old_word=0)
        encoded = encoder.encode(0xFFFF, context)
        assert encoded.cost == 16

    def test_rejects_oversized_word(self, mlc_context):
        encoder = UnencodedEncoder()
        with pytest.raises(EncodingError):
            encoder.encode(1 << 64, mlc_context)

    def test_rejects_wrong_context(self, word64):
        encoder = UnencodedEncoder()
        with pytest.raises(EncodingError):
            encoder.encode(word64, WordContext.blank(32, 2))


class TestDBI:
    def test_keeps_data_when_cheap(self):
        encoder = DBIEncoder(cost_function=BitChangeCost())
        context = _mlc_context(old_word=0x0F)
        encoded = encoder.encode(0x0F, context)
        assert encoded.codeword == 0x0F
        assert encoded.aux == 0

    def test_inverts_when_cheaper(self):
        encoder = DBIEncoder(cost_function=BitChangeCost())
        data = 0x0123456789ABCDEF
        context = _mlc_context(old_word=data ^ ((1 << 64) - 1))
        encoded = encoder.encode(data, context)
        assert encoded.aux == 1
        assert encoded.codeword == data ^ ((1 << 64) - 1)

    def test_decode_roundtrip(self, rng):
        encoder = DBIEncoder()
        for _ in range(20):
            data = int(rng.integers(0, 1 << 63))
            context = _mlc_context(int(rng.integers(0, 1 << 63)))
            encoded = encoder.encode(data, context)
            assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_single_aux_bit(self):
        assert DBIEncoder().aux_bits == 1


class TestFNW:
    def test_aux_bits_equal_partitions(self):
        assert FNWEncoder(partitions=4).aux_bits == 4

    def test_never_worse_than_unencoded(self, rng):
        fnw = FNWEncoder(partitions=4, cost_function=BitChangeCost())
        plain = UnencodedEncoder(cost_function=BitChangeCost())
        for _ in range(25):
            data = int(rng.integers(0, 1 << 63))
            old = int(rng.integers(0, 1 << 63))
            context = _mlc_context(old)
            # Compare data-cell cost only (FNW additionally pays aux bits).
            fnw_word = fnw.encode(data, context)
            plain_word = plain.encode(data, context)
            data_cost = fnw_word.cost - fnw.cost_function.aux_cost(
                fnw_word.aux, context.old_aux, fnw.aux_bits
            )
            assert data_cost <= plain_word.cost

    def test_decode_roundtrip(self, rng):
        encoder = FNWEncoder(partitions=8)
        for _ in range(25):
            data = int(rng.integers(0, 1 << 63))
            context = _mlc_context(int(rng.integers(0, 1 << 63)))
            encoded = encoder.encode(data, context)
            assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_per_partition_inversion(self):
        encoder = FNWEncoder(partitions=4, cost_function=BitChangeCost())
        # Old contents: first 16-bit block all ones, rest zeros.
        old = 0xFFFF << 48
        encoded = encoder.encode(0, _mlc_context(old))
        # The first partition should be inverted (writes 0xFFFF to match old).
        assert (encoded.aux >> 3) & 1 == 1
        assert encoded.codeword >> 48 == 0xFFFF

    def test_invalid_partition_count(self):
        with pytest.raises(ConfigurationError):
            FNWEncoder(partitions=5)

    def test_decode_rejects_bad_aux(self):
        encoder = FNWEncoder(partitions=2)
        with pytest.raises(ConfigurationError):
            encoder.decode(0, 4)


class TestFlipcy:
    def test_roundtrip_all_forms(self):
        encoder = FlipcyEncoder()
        mask = (1 << 64) - 1
        data = 0x0123456789ABCDEF
        for aux, transform in [(0, data), (1, data ^ mask), (2, (-data) & mask)]:
            assert encoder.decode(transform, aux) == data

    def test_selects_identity_when_old_matches(self):
        encoder = FlipcyEncoder(cost_function=BitChangeCost())
        data = 0xAAAA5555AAAA5555
        encoded = encoder.encode(data, _mlc_context(data))
        assert encoded.aux == 0
        assert encoded.codeword == data

    def test_selects_complement_when_old_is_inverted(self):
        encoder = FlipcyEncoder(cost_function=BitChangeCost())
        data = 0x00000000FFFFFFFF
        encoded = encoder.encode(data, _mlc_context(data ^ ((1 << 64) - 1)))
        assert encoded.aux == 1

    def test_two_aux_bits(self):
        assert FlipcyEncoder().aux_bits == 2

    def test_decode_rejects_bad_aux(self):
        with pytest.raises(ConfigurationError):
            FlipcyEncoder().decode(0, 3)

    def test_encode_decode_random(self, rng):
        encoder = FlipcyEncoder()
        for _ in range(25):
            data = int(rng.integers(0, 1 << 63))
            encoded = encoder.encode(data, _mlc_context(int(rng.integers(0, 1 << 63))))
            assert encoder.decode(encoded.codeword, encoded.aux) == data


class TestBCC:
    def test_partitions_follow_log2(self):
        assert BCCEncoder(num_cosets=16).partitions == 4
        assert BCCEncoder(num_cosets=256).partitions == 8

    def test_infeasible_count_falls_back(self):
        # log2(64) = 6 does not divide 64; the encoder falls back to fewer
        # sections rather than refusing.
        encoder = BCCEncoder(num_cosets=64)
        assert 64 % encoder.partitions == 0

    def test_roundtrip(self, rng):
        encoder = BCCEncoder(num_cosets=16)
        for _ in range(20):
            data = int(rng.integers(0, 1 << 63))
            encoded = encoder.encode(data, _mlc_context(int(rng.integers(0, 1 << 63))))
            assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_rejects_single_coset(self):
        with pytest.raises(ConfigurationError):
            BCCEncoder(num_cosets=1)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BCCEncoder(num_cosets=24)


class TestRCC:
    def test_aux_bits(self):
        assert RCCEncoder(num_cosets=256).aux_bits == 8
        assert RCCEncoder(num_cosets=32).aux_bits == 5

    def test_coset_zero_is_identity(self):
        encoder = RCCEncoder(num_cosets=16)
        assert encoder.cosets[0] == 0

    def test_cosets_distinct(self):
        encoder = RCCEncoder(num_cosets=128)
        assert len(set(encoder.cosets)) == 128

    def test_roundtrip(self, rng):
        encoder = RCCEncoder(num_cosets=64)
        for _ in range(20):
            data = int(rng.integers(0, 1 << 63))
            encoded = encoder.encode(data, _mlc_context(int(rng.integers(0, 1 << 63))))
            assert encoder.decode(encoded.codeword, encoded.aux) == data

    def test_never_worse_than_unencoded_on_data_cells(self, rng):
        cost = BitChangeCost()
        rcc = RCCEncoder(num_cosets=64, cost_function=cost)
        for _ in range(10):
            data = int(rng.integers(0, 1 << 63))
            old = int(rng.integers(0, 1 << 63))
            context = _mlc_context(old)
            encoded = rcc.encode(data, context)
            data_cost = encoded.cost - cost.aux_cost(encoded.aux, 0, rcc.aux_bits)
            assert data_cost <= bin(data ^ old).count("1")

    def test_more_cosets_never_hurt(self, rng):
        cost = BitChangeCost()
        small = RCCEncoder(num_cosets=8, cost_function=cost, seed=3)
        large = RCCEncoder(num_cosets=128, cost_function=cost, seed=3)
        # The large ROM is a superset only in expectation; compare averages.
        small_total = 0.0
        large_total = 0.0
        for _ in range(40):
            data = int(rng.integers(0, 1 << 63))
            context = _mlc_context(int(rng.integers(0, 1 << 63)))
            small_total += small.encode(data, context).cost
            large_total += large.encode(data, context).cost
        assert large_total <= small_total

    def test_deterministic_rom(self):
        a = RCCEncoder(num_cosets=32, seed=11)
        b = RCCEncoder(num_cosets=32, seed=11)
        assert a.cosets == b.cosets

    def test_decode_rejects_bad_index(self):
        encoder = RCCEncoder(num_cosets=16)
        with pytest.raises(ConfigurationError):
            encoder.decode(0, 16)

    def test_saw_cost_masks_faults(self, rng):
        # With enough cosets and SAW cost, single faults should be masked.
        encoder = RCCEncoder(num_cosets=256, cost_function=SawCost())
        masked = 0
        trials = 20
        for _ in range(trials):
            old_word = int(rng.integers(0, 1 << 63))
            stuck = np.zeros(32, dtype=bool)
            stuck[int(rng.integers(0, 32))] = True
            context = WordContext.from_word(old_word, 64, 2, stuck_mask=stuck)
            data = int(rng.integers(0, 1 << 63))
            encoded = encoder.encode(data, context)
            # Cost (SAW count) should be zero when the fault is masked.
            if encoded.cost == 0:
                masked += 1
        assert masked >= trials * 0.9
