"""Tests for repro.utils.validation."""

import pytest

from repro.errors import ConfigurationError
from repro.utils import validation


class TestRequire:
    def test_passes(self):
        validation.require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="broken"):
            validation.require(False, "broken")


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 256, 1 << 20])
    def test_accepts_powers(self, value):
        validation.require_power_of_two(value, "value")

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 255])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ConfigurationError):
            validation.require_power_of_two(value, "value")


class TestDivisible:
    def test_accepts_multiple(self):
        validation.require_divisible(64, 16, "should divide")

    def test_rejects_non_multiple(self):
        with pytest.raises(ConfigurationError):
            validation.require_divisible(64, 12, "does not divide")

    def test_rejects_zero_denominator(self):
        with pytest.raises(ConfigurationError):
            validation.require_divisible(64, 0, "zero")


class TestInRange:
    def test_accepts_bounds(self):
        validation.require_in_range(0.0, 0.0, 1.0, "x")
        validation.require_in_range(1.0, 0.0, 1.0, "x")

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            validation.require_in_range(1.5, 0.0, 1.0, "x")
