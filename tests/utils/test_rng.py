"""Tests for repro.utils.rng."""

import warnings

import pytest

from repro.utils import rng as rng_mod


class TestDeriveSeed:
    def test_deterministic(self):
        assert rng_mod.derive_seed(1, "a") == rng_mod.derive_seed(1, "a")

    def test_label_changes_seed(self):
        assert rng_mod.derive_seed(1, "a") != rng_mod.derive_seed(1, "b")

    def test_parent_changes_seed(self):
        assert rng_mod.derive_seed(1, "a") != rng_mod.derive_seed(2, "a")

    def test_non_negative_63_bit(self):
        for seed in range(20):
            child = rng_mod.derive_seed(seed, "label")
            assert 0 <= child < (1 << 63)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = rng_mod.make_rng(5, "x").integers(0, 1 << 30, size=10)
        b = rng_mod.make_rng(5, "x").integers(0, 1 << 30, size=10)
        assert (a == b).all()

    def test_different_labels_different_streams(self):
        a = rng_mod.make_rng(5, "x").integers(0, 1 << 30, size=10)
        b = rng_mod.make_rng(5, "y").integers(0, 1 << 30, size=10)
        assert not (a == b).all()

    def test_none_seed_returns_generator(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", rng_mod.UnseededRNGWarning)
            generator = rng_mod.make_rng(None)
        assert generator.integers(0, 10) in range(10)


class TestUnseededWarning:
    @pytest.fixture(autouse=True)
    def _reset_latch(self, monkeypatch):
        monkeypatch.setattr(rng_mod, "_unseeded_warned", False)

    def test_first_unseeded_call_warns(self):
        with pytest.warns(rng_mod.UnseededRNGWarning, match="not reproducible"):
            rng_mod.make_rng()

    def test_warning_is_one_time_per_process(self):
        with pytest.warns(rng_mod.UnseededRNGWarning):
            rng_mod.make_rng()
        with warnings.catch_warnings():
            warnings.simplefilter("error", rng_mod.UnseededRNGWarning)
            rng_mod.make_rng()
            rng_mod.make_rng(None)

    def test_seeded_calls_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", rng_mod.UnseededRNGWarning)
            rng_mod.make_rng(7)
            rng_mod.make_rng(7, "label")


class TestSpawn:
    def test_one_per_label(self):
        generators = rng_mod.spawn_rngs(3, ["a", "b", "c"])
        assert len(generators) == 3

    def test_streams_independent(self):
        a, b = rng_mod.spawn_rngs(3, ["a", "b"])
        assert not (a.integers(0, 1 << 30, size=8) == b.integers(0, 1 << 30, size=8)).all()
