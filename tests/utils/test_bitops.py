"""Tests for repro.utils.bitops."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.utils import bitops


class TestHammingWeight:
    def test_zero(self):
        assert bitops.hamming_weight(0) == 0

    def test_all_ones_64(self):
        assert bitops.hamming_weight((1 << 64) - 1) == 64

    def test_single_bits(self):
        for shift in range(64):
            assert bitops.hamming_weight(1 << shift) == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.hamming_weight(-1)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_matches_bin_count(self, value):
        assert bitops.hamming_weight(value) == bin(value).count("1")


class TestHammingDistance:
    def test_identical(self):
        assert bitops.hamming_distance(0xDEADBEEF, 0xDEADBEEF) == 0

    def test_complement(self):
        value = 0x0F0F0F0F
        assert bitops.hamming_distance(value, value ^ 0xFFFFFFFF) == 32

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_symmetry(self, a, b):
        assert bitops.hamming_distance(a, b) == bitops.hamming_distance(b, a)


class TestPopcountArray:
    def test_matches_python_popcount(self, rng):
        words = rng.integers(0, 1 << 63, size=100, dtype=np.uint64)
        counts = bitops.popcount64_array(words)
        expected = [bin(int(w)).count("1") for w in words]
        assert counts.tolist() == expected

    def test_shape_preserved(self, rng):
        words = rng.integers(0, 1 << 63, size=(4, 5), dtype=np.uint64)
        assert bitops.popcount64_array(words).shape == (4, 5)

    def test_all_ones(self):
        words = np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert bitops.popcount64_array(words)[0] == 64


class TestBitsConversion:
    def test_int_to_bits_msb_first(self):
        assert bitops.int_to_bits(0b1010, 4) == [1, 0, 1, 0]

    def test_bits_to_int_roundtrip(self):
        assert bitops.bits_to_int(bitops.int_to_bits(0xABCD, 16)) == 0xABCD

    def test_value_too_large(self):
        with pytest.raises(ConfigurationError):
            bitops.int_to_bits(16, 4)

    def test_invalid_bit(self):
        with pytest.raises(ConfigurationError):
            bitops.bits_to_int([0, 2, 1])

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        assert bitops.bits_to_int(bitops.int_to_bits(value, 32)) == value


class TestSubblocks:
    def test_split_msb_first(self):
        value = 0xAABBCCDD
        assert bitops.split_subblocks(value, 32, 8) == [0xAA, 0xBB, 0xCC, 0xDD]

    def test_concat_inverse(self):
        subs = [0x12, 0x34, 0x56, 0x78]
        assert bitops.split_subblocks(bitops.concat_subblocks(subs, 8), 32, 8) == subs

    def test_indivisible_width_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.split_subblocks(0, 64, 12)

    def test_oversized_value_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.split_subblocks(1 << 32, 32, 8)

    def test_oversized_subblock_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.concat_subblocks([256], 8)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property_16(self, value):
        subs = bitops.split_subblocks(value, 64, 16)
        assert bitops.concat_subblocks(subs, 16) == value


class TestSymbols:
    def test_split_symbols(self):
        assert bitops.split_symbols(0b11100100, 8) == [3, 2, 1, 0]

    def test_merge_symbols(self):
        assert bitops.merge_symbols([3, 2, 1, 0]) == 0b11100100

    def test_odd_width_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.split_symbols(0, 7)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property(self, value):
        assert bitops.merge_symbols(bitops.split_symbols(value, 64)) == value


class TestPlanes:
    def test_split_planes_simple(self):
        # symbols: 11, 00, 10, 01 -> left plane 1001, right plane 1001... check
        word = 0b11001001
        left, right = bitops.split_planes(word, 8)
        assert left == 0b1010
        assert right == 0b1001

    def test_interleave_inverse(self):
        word = 0xDEADBEEF
        left, right = bitops.split_planes(word, 32)
        assert bitops.interleave_planes(left, right, 32) == word

    def test_plane_too_wide_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.interleave_planes(1 << 16, 0, 32)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property(self, value):
        left, right = bitops.split_planes(value, 64)
        assert bitops.interleave_planes(left, right, 64) == value

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_left_plane_is_msb_of_each_symbol(self, value):
        left, _right = bitops.split_planes(value, 64)
        symbols = bitops.split_symbols(value, 64)
        expected = 0
        for symbol in symbols:
            expected = (expected << 1) | (symbol >> 1)
        assert left == expected


class TestRandomWord:
    def test_width_respected(self, rng):
        for width in (1, 8, 16, 32, 64, 128):
            value = bitops.random_word(rng, width)
            assert 0 <= value < (1 << width)

    def test_invalid_width(self, rng):
        with pytest.raises(ConfigurationError):
            bitops.random_word(rng, 0)

    def test_deterministic_given_seed(self):
        a = bitops.random_word(np.random.default_rng(7), 64)
        b = bitops.random_word(np.random.default_rng(7), 64)
        assert a == b


class TestMask:
    def test_values(self):
        assert bitops.mask(0) == 0
        assert bitops.mask(1) == 1
        assert bitops.mask(16) == 0xFFFF

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bitops.mask(-1)
