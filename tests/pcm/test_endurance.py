"""Tests for the endurance (wear-out) model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.endurance import EnduranceModel


class TestSampling:
    def test_mean_approximately_respected(self):
        model = EnduranceModel(mean_writes=10_000, coefficient_of_variation=0.2)
        lifetimes = model.sample(20_000, seed=1)
        assert abs(lifetimes.mean() - 10_000) / 10_000 < 0.02

    def test_spread_approximately_respected(self):
        model = EnduranceModel(mean_writes=10_000, coefficient_of_variation=0.2)
        lifetimes = model.sample(20_000, seed=1)
        assert abs(lifetimes.std() - 2_000) / 2_000 < 0.05

    def test_minimum_enforced(self):
        model = EnduranceModel(mean_writes=5, coefficient_of_variation=2.0, minimum_writes=1)
        lifetimes = model.sample(5_000, seed=2)
        assert lifetimes.min() >= 1

    def test_deterministic_with_seed(self):
        model = EnduranceModel(mean_writes=100)
        assert (model.sample(100, seed=3) == model.sample(100, seed=3)).all()

    def test_zero_count(self):
        assert len(EnduranceModel().sample(0, seed=0)) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel().sample(-1, seed=0)

    def test_integer_dtype(self):
        lifetimes = EnduranceModel(mean_writes=50).sample(10, seed=4)
        assert lifetimes.dtype == np.int64


class TestValidation:
    def test_non_positive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel(mean_writes=0)

    def test_negative_cov_rejected(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel(coefficient_of_variation=-0.1)

    def test_minimum_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel(minimum_writes=0)

    def test_std_property(self):
        model = EnduranceModel(mean_writes=1000, coefficient_of_variation=0.3)
        assert model.std_writes == pytest.approx(300.0)


class TestScaling:
    def test_scaled_mean(self):
        model = EnduranceModel(mean_writes=1.0e8).scaled(1e-5)
        assert model.mean_writes == pytest.approx(1.0e3)

    def test_scaled_keeps_cov(self):
        model = EnduranceModel(coefficient_of_variation=0.25).scaled(0.5)
        assert model.coefficient_of_variation == 0.25

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            EnduranceModel().scaled(0.0)
