"""Tests for the PCM cell definitions."""

import pytest

from repro.errors import ConfigurationError
from repro.pcm.cell import (
    CellTechnology,
    MLC_GRAY_LEVELS,
    gray_level_to_symbol,
    is_intermediate_symbol,
    symbol_to_gray_level,
)


class TestCellTechnology:
    def test_bits_per_cell(self):
        assert CellTechnology.SLC.bits_per_cell == 1
        assert CellTechnology.MLC.bits_per_cell == 2

    def test_levels(self):
        assert CellTechnology.SLC.levels == 2
        assert CellTechnology.MLC.levels == 4


class TestGrayCoding:
    def test_sequence_covers_all_symbols(self):
        assert sorted(MLC_GRAY_LEVELS) == [0, 1, 2, 3]

    def test_adjacent_levels_differ_in_one_bit(self):
        for a, b in zip(MLC_GRAY_LEVELS, MLC_GRAY_LEVELS[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_level_symbol_roundtrip(self):
        for level in range(4):
            assert symbol_to_gray_level(gray_level_to_symbol(level)) == level

    def test_extreme_levels_have_right_digit_zero(self):
        # The stuck-at-SET / stuck-at-RESET states are the cheap-to-program
        # end states in Table I (right digit 0).
        assert MLC_GRAY_LEVELS[0] & 1 == 0
        assert MLC_GRAY_LEVELS[-1] & 1 == 0

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigurationError):
            gray_level_to_symbol(4)

    def test_invalid_symbol_rejected(self):
        with pytest.raises(ConfigurationError):
            symbol_to_gray_level(7)


class TestIntermediateSymbols:
    def test_right_digit_one_is_intermediate(self):
        assert is_intermediate_symbol(0b01)
        assert is_intermediate_symbol(0b11)

    def test_right_digit_zero_is_not(self):
        assert not is_intermediate_symbol(0b00)
        assert not is_intermediate_symbol(0b10)

    def test_invalid_symbol_rejected(self):
        with pytest.raises(ConfigurationError):
            is_intermediate_symbol(5)
