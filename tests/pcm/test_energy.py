"""Tests for the Table I energy model and the SLC energy model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.pcm.energy import DEFAULT_MLC_ENERGY, MLCEnergyModel, SLCEnergyModel


class TestMLCTransitionStructure:
    """The structural content of Table I."""

    def test_diagonal_is_free(self):
        model = MLCEnergyModel()
        for symbol in range(4):
            assert model.transition_energy(symbol, symbol) == model.same_state_energy_pj

    def test_intermediate_targets_are_high(self):
        model = MLCEnergyModel()
        for old in range(4):
            for new in (0b01, 0b11):
                if old != new:
                    assert model.transition_energy(old, new) == model.high_energy_pj

    def test_end_state_targets_are_low(self):
        model = MLCEnergyModel()
        for old in range(4):
            for new in (0b00, 0b10):
                if old != new:
                    assert model.transition_energy(old, new) == model.low_energy_pj

    def test_lut_matches_scalar(self):
        model = MLCEnergyModel()
        lut = model.lut()
        for old in range(4):
            for new in range(4):
                assert lut[old, new] == model.transition_energy(old, new)

    def test_invalid_symbol_rejected(self):
        with pytest.raises(ConfigurationError):
            MLCEnergyModel().transition_energy(4, 0)


class TestMLCValidation:
    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            MLCEnergyModel(low_energy_pj=-1.0)

    def test_high_below_low_rejected(self):
        with pytest.raises(ConfigurationError):
            MLCEnergyModel(low_energy_pj=5.0, high_energy_pj=1.0)


class TestMLCAggregation:
    def test_symbols_energy_sum(self):
        model = MLCEnergyModel(low_energy_pj=1.0, high_energy_pj=10.0)
        old = np.array([0, 0, 0, 0])
        new = np.array([0, 1, 2, 3])  # same, high, low, high? (2 -> '10' low, 3 -> '11' high)
        expected = 0.0 + 10.0 + 1.0 + 10.0
        assert model.symbols_energy(old, new) == pytest.approx(expected)

    def test_symbols_energy_shape_mismatch(self):
        model = MLCEnergyModel()
        with pytest.raises(ConfigurationError):
            model.symbols_energy(np.zeros(3), np.zeros(4))

    def test_word_energy_matches_symbols(self, rng):
        model = MLCEnergyModel()
        old_word = int(rng.integers(0, 1 << 63))
        new_word = int(rng.integers(0, 1 << 63))
        from repro.utils.bitops import split_symbols

        by_symbols = model.symbols_energy(
            np.array(split_symbols(old_word, 64)), np.array(split_symbols(new_word, 64))
        )
        assert model.word_energy(old_word, new_word) == pytest.approx(by_symbols)

    def test_identical_word_costs_nothing(self):
        model = MLCEnergyModel()
        assert model.word_energy(0xABCDEF, 0xABCDEF) == 0.0

    def test_aux_energy_counts_changed_bits(self):
        model = MLCEnergyModel(aux_bit_energy_pj=3.0)
        assert model.aux_energy(0b0000, 0b1010) == pytest.approx(6.0)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_energy_non_negative(self, new_word):
        assert DEFAULT_MLC_ENERGY.word_energy(0, new_word) >= 0.0


class TestSLCEnergy:
    def test_unchanged_bit_is_free(self):
        model = SLCEnergyModel()
        assert model.bit_energy(1, 1) == 0.0
        assert model.bit_energy(0, 0) == 0.0

    def test_set_and_reset(self):
        model = SLCEnergyModel(set_energy_pj=1.5, reset_energy_pj=2.5)
        assert model.bit_energy(0, 1) == 1.5
        assert model.bit_energy(1, 0) == 2.5

    def test_invalid_bit_rejected(self):
        with pytest.raises(ConfigurationError):
            SLCEnergyModel().bit_energy(2, 0)

    def test_word_energy(self):
        model = SLCEnergyModel(set_energy_pj=1.0, reset_energy_pj=2.0)
        # 0b0011 -> 0b0101: bit0 1->1 (free), bit1 1->0 (reset), bit2 0->1 (set), bit3 0->0
        assert model.word_energy(0b0011, 0b0101, word_bits=4) == pytest.approx(3.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            SLCEnergyModel(set_energy_pj=-0.5)

    def test_aux_energy(self):
        model = SLCEnergyModel(aux_bit_energy_pj=2.0)
        assert model.aux_energy(0b01, 0b10) == pytest.approx(4.0)
