"""Tests for the PCM array model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryModelError
from repro.pcm.array import PCMArray, cells_to_word, word_to_cells
from repro.pcm.cell import CellTechnology
from repro.pcm.endurance import EnduranceModel
from repro.pcm.faultmap import FaultMap


class TestWordCellConversion:
    def test_word_to_cells_mlc(self):
        cells = word_to_cells(0b11100100, 8, 2)
        assert cells.tolist() == [3, 2, 1, 0]

    def test_word_to_cells_slc(self):
        cells = word_to_cells(0b1010, 4, 1)
        assert cells.tolist() == [1, 0, 1, 0]

    def test_roundtrip(self):
        word = 0x0123456789ABCDEF
        assert cells_to_word(word_to_cells(word, 64, 2), 2) == word

    def test_oversized_cell_rejected(self):
        with pytest.raises(ConfigurationError):
            cells_to_word([4], 2)


class TestBasicReadWrite:
    def test_geometry(self):
        array = PCMArray(rows=8, row_bits=512, technology=CellTechnology.MLC)
        assert array.cells_per_row == 256
        assert array.words_per_row == 8
        assert array.cells_per_word == 32

    def test_write_then_read_row(self):
        array = PCMArray(rows=4, row_bits=64, technology=CellTechnology.MLC, seed=1)
        intended = np.arange(32) % 4
        result = array.write_row(2, intended)
        assert (array.read_row(2) == intended).all()
        assert result.saw_count == 0

    def test_write_word_leaves_rest_of_row(self):
        array = PCMArray(rows=2, row_bits=128, technology=CellTechnology.MLC, seed=2)
        before = array.read_row(0)
        array.write_word(0, 1, 0x0123456789ABCDEF)
        after = array.read_row(0)
        assert (after[:32] == before[:32]).all()
        assert cells_to_word(after[32:], 2) == 0x0123456789ABCDEF

    def test_read_word_matches_row_slice(self):
        array = PCMArray(rows=2, row_bits=128, seed=3)
        row = array.read_row(1)
        word = array.read_word(1, 0)
        assert word == cells_to_word(row[:32], 2)

    def test_changed_mask_counts(self):
        array = PCMArray(rows=1, row_bits=64, seed=4)
        old = array.read_row(0)
        new = (old + 1) % 4
        result = array.write_row(0, new)
        assert result.cells_changed == 32

    def test_initial_contents_deterministic(self):
        a = PCMArray(rows=4, row_bits=64, seed=7)
        b = PCMArray(rows=4, row_bits=64, seed=7)
        assert (a.read_row(2) == b.read_row(2)).all()

    def test_out_of_range_row(self):
        array = PCMArray(rows=2, row_bits=64)
        with pytest.raises(MemoryModelError):
            array.read_row(2)

    def test_out_of_range_word(self):
        array = PCMArray(rows=2, row_bits=64)
        with pytest.raises(MemoryModelError):
            array.read_word(0, 1)

    def test_bad_cell_value_rejected(self):
        array = PCMArray(rows=1, row_bits=64)
        with pytest.raises(MemoryModelError):
            array.write_row(0, np.full(32, 5, dtype=np.uint8))

    def test_wrong_length_rejected(self):
        array = PCMArray(rows=1, row_bits=64)
        with pytest.raises(MemoryModelError):
            array.write_row(0, np.zeros(16, dtype=np.uint8))


class TestStuckCells:
    def _array_with_faults(self):
        fault_map = FaultMap(rows=8, cells_per_row=32, fault_rate=0.2, seed=5)
        array = PCMArray(
            rows=8, row_bits=64, technology=CellTechnology.MLC, fault_map=fault_map, seed=5
        )
        return array, fault_map

    def test_initial_values_match_stuck_values(self):
        array, fault_map = self._array_with_faults()
        for row in fault_map.faulty_rows():
            faults = fault_map.row_faults(row)
            row_values = array.read_row(row)
            assert (row_values[faults.positions] == faults.stuck_values).all()

    def test_stuck_cells_do_not_change(self):
        array, fault_map = self._array_with_faults()
        row = next(iter(fault_map.faulty_rows()))
        faults = fault_map.row_faults(row)
        intended = (array.read_row(row) + 1) % 4
        array.write_row(row, intended)
        after = array.read_row(row)
        assert (after[faults.positions] == faults.stuck_values).all()

    def test_saw_mask_reports_mismatches(self):
        array, fault_map = self._array_with_faults()
        row = next(iter(fault_map.faulty_rows()))
        faults = fault_map.row_faults(row)
        intended = array.read_row(row).copy()
        intended[faults.positions[0]] = (faults.stuck_values[0] + 1) % 4
        result = array.write_row(row, intended)
        assert result.saw_count == 1

    def test_matching_write_has_no_saw(self):
        array, fault_map = self._array_with_faults()
        row = next(iter(fault_map.faulty_rows()))
        intended = array.read_row(row)
        result = array.write_row(row, intended)
        assert result.saw_count == 0

    def test_geometry_mismatch_rejected(self):
        fault_map = FaultMap(rows=4, cells_per_row=64, fault_rate=0.1, seed=1)
        with pytest.raises(MemoryModelError):
            PCMArray(rows=4, row_bits=64, fault_map=fault_map)

    def test_stuck_cell_count(self):
        array, fault_map = self._array_with_faults()
        assert array.stuck_cell_count() == fault_map.total_faults


class TestWear:
    def test_wear_accumulates_only_on_changes(self):
        endurance = EnduranceModel(mean_writes=1000, coefficient_of_variation=0.0)
        array = PCMArray(rows=1, row_bits=64, endurance_model=endurance, seed=6)
        first = array.read_row(0)
        array.write_row(0, first)  # no change, no wear
        assert array.wear_of_row(0).sum() == 0
        array.write_row(0, (first + 1) % 4)
        assert array.wear_of_row(0).sum() == 32

    def test_cells_become_stuck_after_endurance(self):
        endurance = EnduranceModel(mean_writes=3, coefficient_of_variation=0.0)
        array = PCMArray(rows=1, row_bits=64, endurance_model=endurance, seed=7)
        value = 0
        for _ in range(4):
            value = (value + 1) % 4
            intended = np.full(32, value, dtype=np.uint8)
            array.write_row(0, intended)
        assert array.stuck_cell_count() == 32

    def test_newly_stuck_reported(self):
        endurance = EnduranceModel(mean_writes=1, coefficient_of_variation=0.0)
        array = PCMArray(rows=1, row_bits=64, endurance_model=endurance, seed=8)
        first = array.read_row(0)
        result = array.write_row(0, (first + 1) % 4)
        assert result.newly_stuck == 32

    def test_stuck_cells_stop_wearing(self):
        endurance = EnduranceModel(mean_writes=1, coefficient_of_variation=0.0)
        array = PCMArray(rows=1, row_bits=64, endurance_model=endurance, seed=9)
        first = array.read_row(0)
        array.write_row(0, (first + 1) % 4)
        wear_after_first = array.wear_of_row(0).copy()
        array.write_row(0, (first + 2) % 4)
        assert (array.wear_of_row(0) == wear_after_first).all()

    def test_no_endurance_model_reports_zero_wear(self):
        array = PCMArray(rows=1, row_bits=64)
        assert array.wear_of_row(0).sum() == 0


class TestValidation:
    def test_row_bits_must_hold_words(self):
        with pytest.raises(ConfigurationError):
            PCMArray(rows=1, row_bits=100, word_bits=64)

    def test_word_bits_must_hold_cells(self):
        with pytest.raises(ConfigurationError):
            PCMArray(rows=1, row_bits=66, word_bits=33, technology=CellTechnology.MLC)
