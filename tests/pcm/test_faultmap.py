"""Tests for the stuck-at fault map."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryModelError
from repro.pcm.cell import CellTechnology, MLC_GRAY_LEVELS
from repro.pcm.faultmap import FaultMap


class TestGeneration:
    def test_observed_rate_close_to_requested(self):
        fault_map = FaultMap(rows=400, cells_per_row=256, fault_rate=1e-2, seed=1)
        assert abs(fault_map.observed_fault_rate - 1e-2) < 2.5e-3

    def test_zero_rate_produces_no_faults(self):
        fault_map = FaultMap(rows=50, cells_per_row=256, fault_rate=0.0, seed=1)
        assert fault_map.total_faults == 0

    def test_deterministic_given_seed(self):
        a = FaultMap(rows=50, cells_per_row=128, fault_rate=0.01, seed=9)
        b = FaultMap(rows=50, cells_per_row=128, fault_rate=0.01, seed=9)
        assert a.total_faults == b.total_faults
        for row in a.faulty_rows():
            assert (a.row_faults(row).positions == b.row_faults(row).positions).all()

    def test_different_seeds_differ(self):
        a = FaultMap(rows=50, cells_per_row=256, fault_rate=0.02, seed=1)
        b = FaultMap(rows=50, cells_per_row=256, fault_rate=0.02, seed=2)
        positions_a = {(r, tuple(a.row_faults(r).positions)) for r in a.faulty_rows()}
        positions_b = {(r, tuple(b.row_faults(r).positions)) for r in b.faulty_rows()}
        assert positions_a != positions_b

    def test_positions_sorted_and_unique(self):
        fault_map = FaultMap(rows=100, cells_per_row=256, fault_rate=0.05, seed=3)
        for row in fault_map.faulty_rows():
            positions = fault_map.row_faults(row).positions
            assert (np.diff(positions) > 0).all()

    def test_mlc_extreme_stuck_values(self):
        fault_map = FaultMap(
            rows=100, cells_per_row=256, fault_rate=0.05, seed=3, stuck_values="extremes"
        )
        allowed = {MLC_GRAY_LEVELS[0], MLC_GRAY_LEVELS[-1]}
        for row in fault_map.faulty_rows():
            assert set(fault_map.row_faults(row).stuck_values.tolist()) <= allowed

    def test_mlc_any_stuck_values_cover_all_levels(self):
        fault_map = FaultMap(
            rows=200, cells_per_row=256, fault_rate=0.05, seed=3, stuck_values="any"
        )
        seen = set()
        for row in fault_map.faulty_rows():
            seen |= set(fault_map.row_faults(row).stuck_values.tolist())
        assert seen == {0, 1, 2, 3}

    def test_slc_stuck_values_binary(self):
        fault_map = FaultMap(
            rows=100,
            cells_per_row=512,
            technology=CellTechnology.SLC,
            fault_rate=0.05,
            seed=4,
        )
        for row in fault_map.faulty_rows():
            assert set(fault_map.row_faults(row).stuck_values.tolist()) <= {0, 1}


class TestClustering:
    def test_clustering_concentrates_faults(self):
        spread = FaultMap(rows=200, cells_per_row=256, fault_rate=0.01, clustering=0.0, seed=5)
        packed = FaultMap(rows=200, cells_per_row=256, fault_rate=0.01, clustering=0.8, seed=5)
        assert len(list(packed.faulty_rows())) < len(list(spread.faulty_rows()))

    def test_clustering_keeps_total_rate_similar(self):
        packed = FaultMap(rows=400, cells_per_row=256, fault_rate=0.01, clustering=0.8, seed=6)
        assert abs(packed.observed_fault_rate - 0.01) < 5e-3


class TestAccess:
    def test_row_without_faults_is_empty(self):
        fault_map = FaultMap(rows=10, cells_per_row=64, fault_rate=0.0, seed=1)
        faults = fault_map.row_faults(3)
        assert faults.count == 0

    def test_out_of_range_row_rejected(self):
        fault_map = FaultMap(rows=10, cells_per_row=64, fault_rate=0.0, seed=1)
        with pytest.raises(MemoryModelError):
            fault_map.row_faults(10)

    def test_stuck_array_dense_view(self):
        fault_map = FaultMap(rows=20, cells_per_row=64, fault_rate=0.1, seed=7)
        for row in fault_map.faulty_rows():
            is_stuck, values = fault_map.stuck_array(row)
            faults = fault_map.row_faults(row)
            assert is_stuck.sum() == faults.count
            assert (values[faults.positions] == faults.stuck_values).all()

    def test_in_word_slicing(self):
        fault_map = FaultMap(rows=20, cells_per_row=64, fault_rate=0.2, seed=8)
        for row in fault_map.faulty_rows():
            faults = fault_map.row_faults(row)
            reassembled = []
            for word in range(2):
                positions, values = faults.in_word(word, 32)
                assert ((positions >= 0) & (positions < 32)).all()
                reassembled.extend((positions + word * 32).tolist())
            assert reassembled == faults.positions.tolist()

    def test_has_faults(self):
        fault_map = FaultMap(rows=30, cells_per_row=256, fault_rate=0.05, seed=9)
        for row in fault_map.faulty_rows():
            assert fault_map.has_faults(row)


class TestValidation:
    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMap(rows=10, cells_per_row=64, fault_rate=1.5)

    def test_bad_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMap(rows=0, cells_per_row=64)

    def test_bad_stuck_values_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultMap(rows=10, cells_per_row=64, stuck_values="weird")

    def test_mismatched_rowfaults_rejected(self):
        from repro.pcm.faultmap import RowFaults

        with pytest.raises(ConfigurationError):
            RowFaults(positions=np.array([1, 2]), stuck_values=np.array([1]))
