"""Tests for the runtime fault repository."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pcm.faultrepo import FaultRepository


def _rows(intended, stored):
    return np.array(intended, dtype=np.uint8), np.array(stored, dtype=np.uint8)


class TestDiscovery:
    def test_no_mismatch_records_nothing(self):
        repo = FaultRepository(rows=4, cells_per_row=4)
        intended, stored = _rows([0, 1, 2, 3], [0, 1, 2, 3])
        assert repo.observe_write(0, intended, stored) == 0
        assert repo.total_known_faults() == 0

    def test_mismatches_recorded_with_stuck_value(self):
        repo = FaultRepository(rows=4, cells_per_row=4)
        intended, stored = _rows([0, 1, 2, 3], [0, 3, 2, 3])
        assert repo.observe_write(1, intended, stored) == 1
        positions, values = repo.known_faults(1)
        assert positions.tolist() == [1]
        assert values.tolist() == [3]

    def test_rediscovery_not_double_counted(self):
        repo = FaultRepository(rows=4, cells_per_row=4)
        intended, stored = _rows([0, 0, 0, 0], [1, 0, 0, 0])
        assert repo.observe_write(0, intended, stored) == 1
        assert repo.observe_write(0, intended, stored) == 0
        assert repo.total_known_faults() == 1

    def test_multiple_rows_tracked_separately(self):
        repo = FaultRepository(rows=4, cells_per_row=4)
        intended, stored = _rows([0, 0, 0, 0], [1, 0, 0, 1])
        repo.observe_write(0, intended, stored)
        repo.observe_write(2, intended, stored)
        assert repo.rows_with_faults() == 2
        assert repo.total_known_faults() == 4

    def test_stuck_mask_dense_view(self):
        repo = FaultRepository(rows=2, cells_per_row=4)
        intended, stored = _rows([0, 0, 0, 0], [0, 2, 0, 1])
        repo.observe_write(0, intended, stored)
        assert repo.stuck_mask(0).tolist() == [False, True, False, True]
        assert repo.stuck_mask(1).tolist() == [False] * 4


class TestCapacity:
    def test_capacity_limits_tracking(self):
        repo = FaultRepository(rows=1, cells_per_row=8, capacity_per_row=2)
        intended, stored = _rows([0] * 8, [1, 1, 1, 0, 0, 0, 0, 0])
        discovered = repo.observe_write(0, intended, stored)
        assert discovered == 2
        assert repo.dropped_faults == 1

    def test_unbounded_by_default(self):
        repo = FaultRepository(rows=1, cells_per_row=8)
        intended, stored = _rows([0] * 8, [1] * 8)
        assert repo.observe_write(0, intended, stored) == 8


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            FaultRepository(rows=0, cells_per_row=4)

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FaultRepository(rows=1, cells_per_row=4, capacity_per_row=-1)

    def test_row_out_of_range(self):
        repo = FaultRepository(rows=2, cells_per_row=4)
        with pytest.raises(ConfigurationError):
            repo.stuck_mask(2)

    def test_shape_mismatch(self):
        repo = FaultRepository(rows=2, cells_per_row=4)
        with pytest.raises(ConfigurationError):
            repo.observe_write(0, np.zeros(3), np.zeros(4))
