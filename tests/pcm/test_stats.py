"""Tests for the write statistics container."""

import pytest

from repro.pcm.stats import WriteStats


class TestWriteStats:
    def test_defaults_are_zero(self):
        stats = WriteStats()
        assert stats.total_energy_pj == 0.0
        assert stats.words_written == 0

    def test_total_energy_sums_data_and_aux(self):
        stats = WriteStats(data_energy_pj=10.0, aux_energy_pj=2.5)
        assert stats.total_energy_pj == pytest.approx(12.5)

    def test_mean_bits_changed(self):
        stats = WriteStats(words_written=4, bits_changed=40)
        assert stats.mean_bits_changed_per_word == pytest.approx(10.0)

    def test_mean_bits_changed_empty(self):
        assert WriteStats().mean_bits_changed_per_word == 0.0

    def test_mean_energy_per_word(self):
        stats = WriteStats(words_written=2, data_energy_pj=6.0, aux_energy_pj=2.0)
        assert stats.mean_energy_per_word_pj == pytest.approx(4.0)

    def test_merge_sums_fields(self):
        a = WriteStats(words_written=1, bits_changed=2, data_energy_pj=3.0, saw_cells=1)
        b = WriteStats(words_written=2, bits_changed=5, data_energy_pj=4.0, saw_cells=2)
        merged = a.merge(b)
        assert merged.words_written == 3
        assert merged.bits_changed == 7
        assert merged.data_energy_pj == pytest.approx(7.0)
        assert merged.saw_cells == 3

    def test_merge_does_not_mutate(self):
        a = WriteStats(words_written=1)
        b = WriteStats(words_written=2)
        a.merge(b)
        assert a.words_written == 1

    def test_as_dict_contains_all_counters(self):
        data = WriteStats(words_written=3, rows_written=1).as_dict()
        assert data["words_written"] == 3
        assert data["rows_written"] == 1
        assert "total_energy_pj" in data
