"""Tests for Start-Gap wear leveling."""

import pytest

from repro.errors import ConfigurationError, MemoryModelError
from repro.pcm.wearlevel import StartGapWearLeveler


class TestMapping:
    def test_initial_mapping_is_identity(self):
        leveler = StartGapWearLeveler(rows=8)
        assert leveler.mapping_snapshot() == {i: i for i in range(8)}

    def test_physical_rows_required(self):
        assert StartGapWearLeveler(rows=8).physical_rows_required == 9

    def test_mapping_is_injective_at_all_times(self):
        leveler = StartGapWearLeveler(rows=8, gap_write_interval=1)
        for _ in range(100):
            leveler.record_write()
            mapping = leveler.mapping_snapshot()
            assert len(set(mapping.values())) == len(mapping)
            assert all(0 <= p <= 8 for p in mapping.values())
            # The gap row is never mapped.
            assert leveler.gap_position not in mapping.values()

    def test_out_of_range_logical_row(self):
        with pytest.raises(MemoryModelError):
            StartGapWearLeveler(rows=4).physical_row(4)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            StartGapWearLeveler(rows=0)
        with pytest.raises(ConfigurationError):
            StartGapWearLeveler(rows=4, gap_write_interval=0)


class TestGapMovement:
    def test_gap_moves_after_interval(self):
        leveler = StartGapWearLeveler(rows=4, gap_write_interval=3)
        assert leveler.record_write() is None
        assert leveler.record_write() is None
        movement = leveler.record_write()
        assert movement == (3, 4)
        assert leveler.gap_position == 3

    def test_gap_wraps_around_the_array(self):
        leveler = StartGapWearLeveler(rows=3, gap_write_interval=1)
        movements = [leveler.record_write() for _ in range(4)]
        # Three movements bring the gap to 0; the fourth wraps it to the top
        # by copying the row at the top physical slot down into position 0.
        assert movements[:3] == [(2, 3), (1, 2), (0, 1)]
        assert movements[3] == (3, 0)
        assert leveler.gap_position == 3

    def test_rotation_changes_hot_row_placement(self):
        leveler = StartGapWearLeveler(rows=8, gap_write_interval=1)
        placements = set()
        for _ in range(9 * 8):
            placements.add(leveler.physical_row(0))
            leveler.record_write()
        # Over a full rotation, logical row 0 visits many physical rows.
        assert len(placements) > 4

    def test_write_amplification(self):
        leveler = StartGapWearLeveler(rows=8, gap_write_interval=10)
        for _ in range(100):
            leveler.record_write()
        assert leveler.gap_moves == 10
        assert leveler.write_amplification(100) == pytest.approx(0.1)

    def test_write_amplification_zero_writes(self):
        assert StartGapWearLeveler(rows=8).write_amplification(0) == 0.0
