"""Campaign resilience: chaos crashes, retries, timeouts, degradation.

The load-bearing claim is that resilience is *scheduling-only*: a sweep
that survives injected worker crashes via bounded retry must hand back
rows bit-identical to a clean serial run, because a task's rows are a
pure function of its parameters no matter which attempt produced them.
The chaos decisions themselves are seeded (:class:`repro.faults.ChaosPlan`),
so every test here injects the same failures on every run.
"""

import multiprocessing

import pytest

from repro.campaign.engine import (
    RunPolicy,
    reset_run_policy,
    run_campaign,
    set_run_policy,
)
from repro.campaign.executor import ProcessExecutor, SerialExecutor
from repro.campaign.spec import SweepSpec
from repro.campaign.store import ResultStore
from repro.errors import ConfigurationError, SimulationError, WorkerCrashError
from repro.faults import ChaosPlan

START_METHODS = multiprocessing.get_all_start_methods()


def _fig7_tasks(cells=8):
    spec = SweepSpec(
        kind="fig7-energy-cell",
        base={
            "rows": 32,
            "word_bits": 64,
            "line_bits": 512,
            "num_writes": 30,
            "technology": "mlc",
            "encoder": "rcc",
            "cost": "energy-then-saw",
            "label": "RCC",
        },
        grid={"cosets": [4, 8]},
        seeds=tuple(range(3, 3 + (cells + 1) // 2)),
    )
    return spec.expand()[:cells]


class TestChaosCrashRecovery:
    """Every batch's first attempt dies; retry must recover bit-identically."""

    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_rows_bit_identical_to_clean_serial(self, start_method, jobs):
        tasks = _fig7_tasks(8)
        oracle = run_campaign(tasks, jobs=1)
        chaos = ChaosPlan(seed=11, crash_rate=1.0)
        if jobs == 1:
            survivor = run_campaign(tasks, jobs=1, retries=2, chaos=chaos)
        else:
            executor = ProcessExecutor(
                jobs, batch_size=2, retries=2, chaos=chaos, start_method=start_method
            )
            rows_by_hash = {}
            stats = executor.run(
                tasks, lambda task, rows, telemetry: rows_by_hash.update(
                    {task.task_hash: rows}
                )
            )
            assert stats.retried > 0
            assert stats.worker_crashes > 0
            assert stats.degraded == 0
            flattened = [row for t in tasks for row in rows_by_hash[t.task_hash]]
            assert flattened == oracle.rows()
            return
        assert survivor.rows() == oracle.rows()
        assert survivor.failures == []

    def test_run_campaign_telemetry_counts_recovery(self):
        tasks = _fig7_tasks(4)
        chaos = ChaosPlan(seed=11, crash_rate=1.0)
        result = run_campaign(tasks, jobs=2, batch_size=2, retries=2, chaos=chaos)
        oracle = run_campaign(tasks, jobs=1)
        assert result.rows() == oracle.rows()
        assert result.telemetry.retried > 0
        assert result.telemetry.worker_crashes > 0
        assert result.telemetry.degraded == 0
        assert "retried" in result.telemetry.resilience_summary()


class TestExhaustion:
    def test_worker_crash_error_carries_batch_and_progress(self):
        tasks = _fig7_tasks(4)
        chaos = ChaosPlan(seed=11, crash_rate=1.0)
        executor = ProcessExecutor(2, batch_size=2, retries=0, chaos=chaos)
        with pytest.raises(WorkerCrashError, match="worker process died") as excinfo:
            executor.run(tasks, lambda task, rows, telemetry: None)
        assert excinfo.value.batch_index >= 0
        assert excinfo.value.completed >= 0

    def test_crashes_beyond_retry_budget_degrade_when_asked(self):
        tasks = _fig7_tasks(4)
        # crash_attempts above the retry budget: every attempt dies.
        chaos = ChaosPlan(seed=11, crash_rate=1.0, crash_attempts=99)
        result = run_campaign(
            tasks, jobs=2, batch_size=2, retries=1, degrade=True, chaos=chaos
        )
        assert len(result.failures) == len(tasks)
        assert {failure.kind for failure in result.failures} == {"crash"}
        assert result.rows() == []


class TestGracefulDegradation:
    def _failing_spec(self, flag):
        from repro.campaign.tasks import register_task

        @register_task("test-resilience-degrade-cell")
        def _cell(params):
            import os

            if params["index"] == 2 and os.path.exists(params["flag"]):
                raise SimulationError("injected task failure")
            return [{"index": params["index"], "value": params["index"] * 7}]

        return SweepSpec(
            kind="test-resilience-degrade-cell",
            base={"flag": str(flag)},
            grid={"index": list(range(5))},
        )

    def test_failure_rows_and_store_healing(self, tmp_path):
        from repro.campaign.tasks import unregister_task

        flag = tmp_path / "armed"
        flag.write_text("armed")
        spec = self._failing_spec(flag)
        store = ResultStore(tmp_path / "store")
        try:
            result = run_campaign(spec, store=store, jobs=1, retries=1, degrade=True)
            assert len(result.failures) == 1
            failure_row = result.failure_rows()[0]
            assert failure_row["kind"] == "error"
            assert failure_row["attempts"] == 2
            assert "injected task failure" in failure_row["message"]
            # Failed tasks are never persisted, so the rerun re-executes
            # exactly them — and succeeds once the flag is gone.
            assert len(store) == 4
            flag.unlink()
            healed = run_campaign(spec, store=store, jobs=1)
            assert healed.cached == 4
            assert healed.executed == 1
            assert [row["value"] for row in healed.rows()] == [i * 7 for i in range(5)]
        finally:
            unregister_task("test-resilience-degrade-cell")

    def test_without_degrade_exhaustion_raises(self, tmp_path):
        from repro.campaign.tasks import unregister_task

        flag = tmp_path / "armed"
        flag.write_text("armed")
        spec = self._failing_spec(flag)
        try:
            with pytest.raises(SimulationError, match="injected task failure"):
                run_campaign(spec, jobs=1, retries=1)
        finally:
            unregister_task("test-resilience-degrade-cell")


class TestTimeouts:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exactly_the_slow_tasks_degrade(self, jobs, tmp_path):
        tasks = _fig7_tasks(6)
        chaos = ChaosPlan(seed=23, crash_rate=0.0, slow_rate=0.5, slow_s=1.5)
        slow_hashes = {
            task.task_hash for task in tasks if chaos.slow_delay(task.task_hash) > 0
        }
        assert 0 < len(slow_hashes) < len(tasks), "seed must mix fast and slow"
        store = ResultStore(tmp_path / "store")
        result = run_campaign(
            tasks,
            store=store,
            jobs=jobs,
            batch_size=1,
            task_timeout_s=0.5,
            degrade=True,
            chaos=chaos,
        )
        failed = {failure.task.task_hash for failure in result.failures}
        assert failed == slow_hashes
        assert {failure.kind for failure in result.failures} == {"timeout"}
        # Resume without chaos heals: only the timed-out tasks re-run.
        healed = run_campaign(tasks, store=store, jobs=jobs)
        assert healed.cached == len(tasks) - len(slow_hashes)
        assert healed.executed == len(slow_hashes)
        assert healed.rows() == run_campaign(tasks, jobs=1).rows()


class TestStoreQuarantine:
    def test_corrupt_object_quarantined_and_recomputed(self, tmp_path):
        tasks = _fig7_tasks(4)
        store = ResultStore(tmp_path / "store")
        first = run_campaign(tasks, store=store, jobs=1)
        assert store.corrupt_object(tasks[0].task_hash)
        second = run_campaign(tasks, store=store, jobs=1)
        assert second.cached == 3
        assert second.executed == 1
        assert second.rows() == first.rows()
        corpses = list((tmp_path / "store").rglob("*.corrupt"))
        assert len(corpses) == 1
        assert corpses[0].stem == tasks[0].task_hash

    def test_chaos_corruption_heals_on_rerun(self, tmp_path):
        tasks = _fig7_tasks(4)
        store = ResultStore(tmp_path / "store")
        chaos = ChaosPlan(seed=7, crash_rate=0.0, corrupt_rate=1.0)
        first = run_campaign(tasks, store=store, jobs=1, retries=0, chaos=chaos)
        # Every stored object was mangled after its put; the rerun must
        # quarantine all of them and recompute from scratch.
        second = run_campaign(tasks, store=store, jobs=1)
        assert second.executed == len(tasks)
        assert second.rows() == first.rows()
        assert len(list((tmp_path / "store").rglob("*.corrupt"))) == len(tasks)


class TestRunPolicy:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RunPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RunPolicy(task_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            RunPolicy(backoff_s=-0.1)

    def test_global_policy_arms_and_disarms(self, tmp_path):
        from repro.campaign.tasks import register_task, unregister_task

        @register_task("test-resilience-policy-cell")
        def _cell(params):
            import os

            if os.path.exists(params["flag"]):
                raise SimulationError("always failing")
            return [{"value": 1}]

        flag = tmp_path / "armed"
        flag.write_text("armed")
        spec = SweepSpec(
            kind="test-resilience-policy-cell",
            base={"flag": str(flag)},
            grid={"index": [0, 1]},
        )
        previous = set_run_policy(RunPolicy(retries=1, degrade=True))
        try:
            assert previous == RunPolicy()
            result = run_campaign(spec, jobs=1)
            assert len(result.failures) == 2
            assert all(failure.attempts == 2 for failure in result.failures)
        finally:
            reset_run_policy()
            unregister_task("test-resilience-policy-cell")
        # Disarmed again: the same sweep now fails fast.
        from repro.campaign.tasks import register_task as re_register

        @re_register("test-resilience-policy-cell")
        def _cell_again(params):
            import os

            if os.path.exists(params["flag"]):
                raise SimulationError("always failing")
            return [{"value": 1}]

        try:
            with pytest.raises(SimulationError, match="always failing"):
                run_campaign(spec, jobs=1)
        finally:
            unregister_task("test-resilience-policy-cell")

    def test_explicit_kwargs_override_policy(self):
        set_run_policy(RunPolicy(retries=5))
        try:
            tasks = _fig7_tasks(2)
            result = run_campaign(tasks, jobs=1, retries=0)
            assert result.telemetry.retried == 0
        finally:
            reset_run_policy()


class TestSerialExecutorRetry:
    def test_serial_retry_recovers_flaky_task(self, tmp_path):
        from repro.campaign.spec import Task
        from repro.campaign.tasks import register_task, unregister_task

        @register_task("test-resilience-flaky-cell")
        def _cell(params):
            import os

            flag = params["flag"]
            if os.path.exists(flag):
                os.unlink(flag)  # fail once, succeed on retry
                raise SimulationError("flaky")
            return [{"value": 42}]

        flag = tmp_path / "flaky"
        flag.write_text("armed")
        task = Task(kind="test-resilience-flaky-cell", params={"flag": str(flag)})
        rows_seen = []
        try:
            stats = SerialExecutor(retries=1, backoff_s=0.0).run(
                [task], lambda t, rows, telemetry: rows_seen.append(rows)
            )
            assert rows_seen == [[{"value": 42}]]
            assert stats.retried == 1
            assert stats.degraded == 0
        finally:
            unregister_task("test-resilience-flaky-cell")
