"""Tests for campaign tasks and sweep specifications."""

import numpy as np
import pytest

from repro.campaign.spec import SweepSpec, Task
from repro.errors import ConfigurationError


class TestTask:
    def test_hash_is_stable_across_param_order(self):
        a = Task(kind="k", params={"x": 1, "y": 2})
        b = Task(kind="k", params={"y": 2, "x": 1})
        assert a.task_hash == b.task_hash
        assert a == b

    def test_hash_differs_for_different_params(self):
        a = Task(kind="k", params={"x": 1})
        b = Task(kind="k", params={"x": 2})
        c = Task(kind="other", params={"x": 1})
        assert len({a.task_hash, b.task_hash, c.task_hash}) == 3

    def test_tuples_normalise_to_lists(self):
        a = Task(kind="k", params={"xs": (1, 2, 3)})
        b = Task(kind="k", params={"xs": [1, 2, 3]})
        assert a == b
        assert a.params["xs"] == [1, 2, 3]

    def test_numpy_scalars_normalise(self):
        a = Task(kind="k", params={"n": np.int64(7), "f": np.float64(0.5)})
        b = Task(kind="k", params={"n": 7, "f": 0.5})
        assert a == b

    def test_unserialisable_param_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(kind="k", params={"obj": object()})

    def test_non_string_key_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(kind="k", params={"nested": {1: "x"}})

    def test_empty_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Task(kind="", params={})

    def test_usable_in_sets(self):
        tasks = {Task(kind="k", params={"x": 1}), Task(kind="k", params={"x": 1})}
        assert len(tasks) == 1

    def test_describe_mentions_kind_and_hash_prefix(self):
        task = Task(kind="demo", params={"benchmark": "lbm"})
        text = task.describe()
        assert "demo" in text and "lbm" in text and task.task_hash[:10] in text


class TestSweepSpec:
    def test_expand_is_the_cross_product_in_axis_order(self):
        spec = SweepSpec(
            kind="k",
            base={"fixed": 1},
            grid={"a": [1, 2], "b": ["x", "y"]},
        )
        tasks = spec.expand()
        assert [(t.params["a"], t.params["b"]) for t in tasks] == [
            (1, "x"), (1, "y"), (2, "x"), (2, "y"),
        ]
        assert all(t.params["fixed"] == 1 for t in tasks)

    def test_seeds_are_a_trailing_axis(self):
        spec = SweepSpec(kind="k", grid={"a": [1]}, seeds=(10, 11))
        assert [t.params["seed"] for t in spec.expand()] == [10, 11]

    def test_axis_colliding_with_base_rejected(self):
        spec = SweepSpec(kind="k", base={"a": 0}, grid={"a": [1]})
        with pytest.raises(ConfigurationError):
            spec.expand()

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(kind="k", grid={"a": []}).expand()

    def test_duplicate_tasks_deduplicated(self):
        spec = SweepSpec(kind="k", grid={"a": [1, 1]})
        assert len(spec.expand()) == 1

    def test_json_roundtrip(self, tmp_path):
        spec = SweepSpec(kind="k", base={"b": 2}, grid={"a": [1, 2]}, seeds=(3,))
        path = tmp_path / "spec.json"
        spec.to_json(path)
        loaded = SweepSpec.from_json(path)
        assert loaded.expand() == spec.expand()

    def test_from_json_accepts_payload_string(self):
        loaded = SweepSpec.from_json('{"kind": "k", "grid": {"a": [1]}}')
        assert len(loaded.expand()) == 1

    def test_from_json_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            SweepSpec.from_json(path)
        with pytest.raises(ConfigurationError):
            SweepSpec.from_json('{"no_kind": 1}')
