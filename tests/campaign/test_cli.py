"""Tests for the ``python -m repro.campaign`` command line."""

import json

from repro.campaign.cli import main


def _fig10_args(store, extra=()):
    return [
        "fig10",
        "--store", str(store),
        "--benchmarks", "lbm",
        "--writebacks", "10",
        "--rows", "32",
        "--num-cosets", "16",
        "--quiet",
        *extra,
    ]


class TestCampaignCli:
    def test_list_kinds(self, capsys):
        assert main(["--list-kinds"]) == 0
        out = capsys.readouterr().out
        assert "fig9-energy-cell" in out and "fig10-saw-cell" in out

    def test_named_sweep_runs_and_caches(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(_fig10_args(store)) == 0
        first = capsys.readouterr().out
        assert "Fig. 10" in first
        assert "2 executed, 0 from cache" in first

        assert main(_fig10_args(store)) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 from cache" in second
        # Cached and fresh runs print the identical table.
        assert first.splitlines()[:6] == second.splitlines()[:6]

    def test_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "rows.json"
        assert main(_fig10_args(tmp_path / "store", ("--json", str(out_path)))) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["columns"] == ["benchmark", "technique", "saw_cells", "reduction_percent"]
        assert len(payload["rows"]) == 2

    def test_spec_file_sweep(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(
            json.dumps(
                {
                    "kind": "fig13-ipc-cell",
                    "base": {
                        "num_cosets": 64,
                        "system": {},
                    },
                    "grid": {"benchmark": ["lbm", "xz"]},
                }
            ),
            encoding="utf-8",
        )
        assert main(["--spec", str(spec_path), "--no-store", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "lbm" in out and "xz" in out
        assert "2 executed" in out

    def test_unknown_sweep_exits_2(self, capsys):
        assert main(["fig99", "--quiet", "--no-store"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_sweep_experiment_exits_2_with_hint(self, capsys):
        """fig3 is a real experiment but not a campaign sweep — no traceback."""
        assert main(["fig3", "--quiet", "--no-store"]) == 2
        err = capsys.readouterr().err
        assert "fig9" in err and "repro.experiments.runner" in err

    def test_fig7_named_sweep_with_coset_counts(self, tmp_path, capsys):
        """The random-line studies run as named sweeps with their own knobs."""
        args = [
            "fig7",
            "--store", str(tmp_path / "store"),
            "--coset-counts", "32", "64",
            "--num-writes", "20",
            "--rows", "24",
            "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "8 executed, 0 from cache" in out
        assert main(args) == 0
        assert "0 executed, 8 from cache" in capsys.readouterr().out

    def test_inapplicable_option_exits_2(self, capsys):
        assert main(["fig13", "--writebacks", "5", "--quiet", "--no-store"]) == 2
        assert "--writebacks" in capsys.readouterr().err

    def test_progress_lines_on_stderr(self, tmp_path, capsys):
        args = _fig10_args(tmp_path / "store")
        args.remove("--quiet")
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "fig10-saw-cell" in err and "[2/2]" in err
