"""Tests for the content-addressed result store."""

import repro.obs as obs
from repro.campaign.spec import Task
from repro.campaign.store import ResultStore


def _task(x=1):
    return Task(kind="demo", params={"x": x})


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = _task()
        rows = [{"metric": 1.5, "name": "a"}]
        store.put(task, rows)
        assert store.get(task) == rows
        assert task in store

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get(_task()) is None
        assert _task() not in store

    def test_len_and_iter_hashes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        tasks = [_task(1), _task(2), _task(3)]
        for task in tasks:
            store.put(task, [])
        assert len(store) == 3
        assert set(store.iter_hashes()) == {t.task_hash for t in tasks}

    def test_object_path_is_content_addressed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = _task()
        path = store.put(task, [{"a": 1}])
        assert path.stem == task.task_hash
        assert path.parent.name == task.task_hash[:2]

    def test_corrupt_object_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = _task()
        path = store.put(task, [{"a": 1}])
        path.write_text("{truncated", encoding="utf-8")
        assert store.get(task) is None

    def test_hash_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first, second = _task(1), _task(2)
        source = store.put(first, [{"a": 1}])
        target = store._path(second.task_hash)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source.read_text(encoding="utf-8"), encoding="utf-8")
        assert store.get(second) is None

    def test_discard(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = _task()
        store.put(task, [])
        assert store.discard(task) is True
        assert store.get(task) is None
        assert store.discard(task) is False

    def test_contains_fast_path_skips_hit_miss_counters(self, tmp_path):
        """Membership probes stat the object — no parse, no hits bump.

        ``store.hits`` / ``store.misses`` keep meaning "rows served";
        probes are counted separately under ``store.probes``.
        """
        store = ResultStore(tmp_path / "store")
        present, absent = _task(1), _task(2)
        store.put(present, [{"a": 1}])
        obs.reset_metrics()
        assert present in store
        assert absent not in store
        snapshot = obs.metrics_snapshot()
        assert snapshot["store.probes"]["value"] == 2
        assert "store.hits" not in snapshot
        assert "store.misses" not in snapshot
        # Serving rows still bumps the hit counter.
        assert store.get(present) == [{"a": 1}]
        assert obs.metrics_snapshot()["store.hits"]["value"] == 1
        obs.reset_metrics()

    def test_contains_true_for_corrupt_object_but_get_recomputes(self, tmp_path):
        """A present-but-corrupt object is "in" the store; ``get`` is a miss."""
        store = ResultStore(tmp_path / "store")
        task = _task()
        path = store.put(task, [{"a": 1}])
        path.write_text("{truncated", encoding="utf-8")
        assert task in store
        assert store.get(task) is None

    def test_put_overwrites_atomically(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = _task()
        store.put(task, [{"v": 1}])
        store.put(task, [{"v": 2}])
        assert store.get(task) == [{"v": 2}]
        # No temp files left behind.
        leftovers = [p for p in (tmp_path / "store").rglob("*.tmp")]
        assert leftovers == []
