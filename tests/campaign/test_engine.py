"""Tests for the campaign engine: determinism, caching, resume.

The determinism tests drive a real (scaled-down) Fig. 10 sweep so the
"bit-identical at any worker count" contract is checked against the
actual simulators, not a toy task.
"""

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.spec import SweepSpec, Task
from repro.campaign.store import ResultStore
from repro.campaign.tasks import register_task, unregister_task
from repro.errors import SimulationError
from repro.sim.saw_sim import SawStudyConfig, benchmark_saw_tasks


def _tiny_fig10_tasks():
    return benchmark_saw_tasks(
        benchmarks=("lbm", "mcf"),
        num_cosets=16,
        writebacks_per_benchmark=12,
        config=SawStudyConfig(rows=32),
    )


class TestDeterminism:
    def test_parallel_rows_bit_identical_to_serial(self):
        tasks = _tiny_fig10_tasks()
        serial = run_campaign(tasks, jobs=1)
        parallel = run_campaign(tasks, jobs=4)
        assert serial.rows() == parallel.rows()
        assert parallel.executed == len(tasks)

    def test_same_spec_same_hashes(self):
        first = [task.task_hash for task in _tiny_fig10_tasks()]
        second = [task.task_hash for task in _tiny_fig10_tasks()]
        assert first == second


class TestCaching:
    def test_second_run_executes_zero_tasks(self, tmp_path):
        tasks = _tiny_fig10_tasks()
        store = ResultStore(tmp_path / "store")
        first = run_campaign(tasks, store=store, jobs=1)
        assert first.executed == len(tasks) and first.cached == 0

        second = run_campaign(tasks, store=store, jobs=4)
        assert second.executed == 0 and second.cached == len(tasks)
        assert second.rows() == first.rows()

    def test_store_accepts_plain_path(self, tmp_path):
        tasks = _tiny_fig10_tasks()[:1]
        run_campaign(tasks, store=tmp_path / "store", jobs=1)
        again = run_campaign(tasks, store=str(tmp_path / "store"), jobs=1)
        assert again.executed == 0

    def test_resume_false_reexecutes_everything(self, tmp_path):
        tasks = _tiny_fig10_tasks()[:2]
        store = ResultStore(tmp_path / "store")
        run_campaign(tasks, store=store, jobs=1)
        fresh = run_campaign(tasks, store=store, jobs=1, resume=False)
        assert fresh.executed == len(tasks) and fresh.cached == 0


class TestResume:
    def test_resume_after_interruption(self, tmp_path):
        """A campaign killed mid-run re-executes only the unfinished tasks."""
        crash_after = 3

        @register_task("test-flaky-cell")
        def _flaky(params):
            return [{"index": params["index"], "value": params["index"] ** 2}]

        executed_first = []

        def interrupting_progress(event):
            executed_first.append(event.task)
            if len(executed_first) >= crash_after:
                raise KeyboardInterrupt

        spec = SweepSpec(kind="test-flaky-cell", grid={"index": list(range(8))})
        store = ResultStore(tmp_path / "store")
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(spec, store=store, jobs=1, progress=interrupting_progress)
            # The interrupted run persisted exactly what completed.
            assert len(store) == crash_after

            resumed = run_campaign(spec, store=store, jobs=1)
            assert resumed.cached == crash_after
            assert resumed.executed == len(spec.expand()) - crash_after
            assert [row["value"] for row in resumed.rows()] == [i ** 2 for i in range(8)]
        finally:
            unregister_task("test-flaky-cell")


class TestEngineBasics:
    def test_progress_events_cover_every_task(self):
        tasks = _tiny_fig10_tasks()
        events = []
        run_campaign(tasks, jobs=1, progress=events.append)
        assert [event.done for event in events] == list(range(1, len(tasks) + 1))
        assert all(event.total == len(tasks) for event in events)
        assert not any(event.from_cache for event in events)

    def test_cache_hits_reported_in_progress(self, tmp_path):
        tasks = _tiny_fig10_tasks()[:2]
        store = ResultStore(tmp_path / "store")
        run_campaign(tasks, store=store, jobs=1)
        events = []
        run_campaign(tasks, store=store, jobs=1, progress=events.append)
        assert all(event.from_cache for event in events)

    def test_duplicate_tasks_execute_once_but_report_rows_twice(self):
        @register_task("test-echo-cell")
        def _echo(params):
            return [{"x": params["x"]}]

        try:
            task = Task(kind="test-echo-cell", params={"x": 5})
            result = run_campaign([task, task], jobs=1)
            assert result.executed == 1
            assert result.rows() == [{"x": 5}, {"x": 5}]
        finally:
            unregister_task("test-echo-cell")

    def test_rows_for_unknown_task_rejected(self):
        result = run_campaign([], jobs=1)
        with pytest.raises(SimulationError):
            result.rows_for(Task(kind="k", params={}))

    def test_non_task_input_rejected(self):
        with pytest.raises(SimulationError):
            run_campaign(["not a task"], jobs=1)

    def test_worker_exception_propagates(self):
        @register_task("test-boom-cell")
        def _boom(params):
            raise SimulationError("boom")

        try:
            with pytest.raises(SimulationError, match="boom"):
                run_campaign([Task(kind="test-boom-cell", params={})], jobs=1)
        finally:
            unregister_task("test-boom-cell")
