"""Determinism and resume contracts of the fig1/fig2/fig7/fig8 sweeps.

The four coset-count studies moved from serial in-process loops onto the
campaign engine; these tests pin the contract that made that move safe:
the legacy serial entry point (``run()`` at ``jobs=1``) and the parallel
campaign path (``jobs=4``) produce bit-identical rows, and a completed
sweep resumes from a result store with zero executions.
"""

import pytest

from repro.campaign.tasks import available_task_kinds
from repro.errors import ConfigurationError
from repro.experiments import fig01_coding_analysis, fig02_fault_masking
from repro.experiments import fig07_write_energy, fig08_saw_cosets
from repro.sim.energy_sim import random_energy_tasks
from repro.sim.saw_sim import fault_masking_tasks, saw_vs_coset_count_tasks

#: name -> (entry point, small-config kwargs) for every new sweep.
SWEEPS = {
    "fig1": (fig01_coding_analysis.run, {"coset_counts": (2, 4, 16)}),
    "fig2": (
        fig02_fault_masking.run,
        {"coset_counts": (1, 4, 32), "rows": 24, "num_writes": 20, "seed": 9},
    ),
    "fig7": (
        fig07_write_energy.run,
        {"coset_counts": (32,), "rows": 24, "num_writes": 20, "seed": 5},
    ),
    "fig8": (
        fig08_saw_cosets.run,
        {"coset_counts": (32,), "rows": 24, "num_writes": 20, "seed": 9},
    ),
}


def _progress_counter():
    events = {"total": 0, "cached": 0}

    def progress(event):
        events["total"] += 1
        events["cached"] += bool(event.from_cache)

    return events, progress


class TestNewTaskKinds:
    def test_kinds_registered(self):
        names = {kind.name for kind in available_task_kinds()}
        assert {
            "fig1-analysis-cell",
            "fig2-masking-cell",
            "fig7-energy-cell",
            "fig8-saw-cell",
        } <= names

    def test_bad_coset_counts_rejected_before_simulation(self):
        with pytest.raises(ConfigurationError):
            fault_masking_tasks(coset_counts=(0,))
        with pytest.raises(ConfigurationError):
            saw_vs_coset_count_tasks(coset_counts=(1,))
        with pytest.raises(ConfigurationError):
            random_energy_tasks(coset_counts=(-4,))
        with pytest.raises(ConfigurationError):
            fig01_coding_analysis.coding_analysis_tasks(coset_counts=(0,))
        with pytest.raises(ConfigurationError):
            fig01_coding_analysis.coding_analysis_tasks(n=0)


class TestFigureSweepDeterminism:
    @pytest.mark.parametrize("name", sorted(SWEEPS))
    def test_serial_and_parallel_rows_bit_identical(self, name):
        """The legacy serial path and a 4-worker campaign agree exactly."""
        entry, kwargs = SWEEPS[name]
        serial = entry(**kwargs)
        parallel = entry(**kwargs, jobs=4)
        assert serial.rows == parallel.rows
        assert list(serial.columns) == list(parallel.columns)

    @pytest.mark.parametrize("name", sorted(SWEEPS))
    def test_cached_resume_executes_nothing(self, name, tmp_path):
        """A finished sweep re-runs entirely from the store: zero executions."""
        entry, kwargs = SWEEPS[name]
        store = tmp_path / "store"
        first_events, first_progress = _progress_counter()
        first = entry(**kwargs, store_dir=store, progress=first_progress)
        assert first_events["cached"] == 0
        assert first_events["total"] > 0

        second_events, second_progress = _progress_counter()
        second = entry(**kwargs, store_dir=store, jobs=2, progress=second_progress)
        assert second_events["total"] == first_events["total"]
        assert second_events["cached"] == second_events["total"]  # zero executed
        assert first.rows == second.rows
