"""Tests for the task-kind registry."""

import pytest

from repro.campaign.spec import Task
from repro.campaign.tasks import (
    available_task_kinds,
    get_task_kind,
    register_task,
    run_task,
    unregister_task,
)
from repro.errors import ConfigurationError, SimulationError


class TestRegistry:
    def test_builtin_kinds_registered(self):
        names = {kind.name for kind in available_task_kinds()}
        assert {
            "fig1-analysis-cell",
            "fig2-masking-cell",
            "fig7-energy-cell",
            "fig8-saw-cell",
            "fig9-energy-cell",
            "fig10-saw-cell",
            "fig11-lifetime-cell",
            "fig12-lifetime-cell",
            "fig13-ipc-cell",
        } <= names

    def test_unknown_kind_lists_available(self):
        with pytest.raises(ConfigurationError, match="fig9-energy-cell"):
            get_task_kind("no-such-kind")

    def test_register_and_unregister(self):
        @register_task("test-double", description="doubles x")
        def _double(params):
            return [{"doubled": params["x"] * 2}]

        try:
            assert run_task(Task(kind="test-double", params={"x": 21})) == [{"doubled": 42}]
            assert get_task_kind("TEST-DOUBLE").name == "test-double"
        finally:
            unregister_task("test-double")
        with pytest.raises(ConfigurationError):
            get_task_kind("test-double")

    def test_duplicate_registration_rejected(self):
        @register_task("test-once")
        def _once(params):
            return []

        try:
            with pytest.raises(ConfigurationError):
                register_task("test-once")(lambda params: [])
        finally:
            unregister_task("test-once")

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            unregister_task("never-registered")

    def test_non_list_return_rejected(self):
        @register_task("test-bad-return")
        def _bad(params):
            return {"not": "a list"}

        try:
            with pytest.raises(SimulationError):
                run_task(Task(kind="test-bad-return", params={}))
        finally:
            unregister_task("test-bad-return")

    def test_unserialisable_row_rejected(self):
        @register_task("test-bad-row")
        def _bad(params):
            return [{"obj": object()}]

        try:
            with pytest.raises(ConfigurationError):
                run_task(Task(kind="test-bad-row", params={}))
        finally:
            unregister_task("test-bad-row")
