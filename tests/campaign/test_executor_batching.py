"""Batched-executor contracts: determinism, shm hygiene, crash recovery.

The determinism matrix drives a real (scaled-down) fig7 sweep through
every batching shape that matters — size 1 (the old one-round-trip-per
-task behaviour), an uneven tail, and a single batch larger than the
task list — under both the ``fork`` and ``spawn`` start methods, and
checks the rows against the serial oracle bit for bit.  The
shared-memory tests force the segment transport with a 1-byte threshold
and assert nothing is left behind in ``/dev/shm`` on either the happy
path or a simulated worker crash.
"""

import multiprocessing
import os

import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.executor import (
    BATCHES_PER_WORKER,
    ProcessExecutor,
    SerialExecutor,
    TaskBatch,
    make_executor,
)
from repro.campaign.spec import SweepSpec, Task
from repro.campaign.store import ResultStore
from repro.campaign.tasks import register_task, unregister_task
from repro.errors import ConfigurationError, SimulationError

START_METHODS = multiprocessing.get_all_start_methods()


def _fig7_tasks(cells=4):
    """A tiny fig7 grid over a builtin kind (importable under spawn)."""
    spec = SweepSpec(
        kind="fig7-energy-cell",
        base={
            "rows": 32,
            "word_bits": 64,
            "line_bits": 512,
            "num_writes": 30,
            "technology": "mlc",
            "encoder": "rcc",
            "cost": "energy-then-saw",
            "label": "RCC",
        },
        grid={"cosets": [4, 8]},
        seeds=tuple(range(3, 3 + (cells + 1) // 2)),
    )
    return spec.expand()[:cells]


def _collect(executor, tasks):
    results = {}
    telemetry = []

    def on_result(task, rows, task_telemetry):
        results[task.task_hash] = rows
        telemetry.append(task_telemetry)

    executor.run(tasks, on_result)
    return results, telemetry


def _shm_entries():
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux host
        return set()


class TestConfiguration:
    def test_explicit_zero_max_in_flight_rejected(self):
        """Regression: ``max_in_flight=0`` used to silently coerce to 4*jobs."""
        with pytest.raises(ConfigurationError, match="max_in_flight"):
            ProcessExecutor(2, max_in_flight=0)

    def test_negative_max_in_flight_rejected(self):
        with pytest.raises(ConfigurationError, match="max_in_flight"):
            ProcessExecutor(2, max_in_flight=-3)

    def test_none_max_in_flight_defaults_to_four_per_worker(self):
        assert ProcessExecutor(3).max_in_flight == 12
        assert ProcessExecutor(3, max_in_flight=1).max_in_flight == 1

    def test_non_positive_batch_size_rejected(self):
        with pytest.raises(ConfigurationError, match="batch_size"):
            ProcessExecutor(2, batch_size=0)

    def test_unavailable_start_method_rejected(self):
        with pytest.raises(ConfigurationError, match="start method"):
            ProcessExecutor(2, start_method="no-such-method")._context()

    def test_make_executor_dispatch(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(2), ProcessExecutor)
        assert make_executor(2, batch_size=5).batch_size == 5


class TestSharding:
    def test_derived_size_targets_batches_per_worker(self):
        tasks = [Task(kind="k", params={"i": i}) for i in range(64)]
        batches = ProcessExecutor(2).shard(tasks)
        # ceil(64 / (BATCHES_PER_WORKER * 2)) tasks per batch
        expected = -(-64 // (BATCHES_PER_WORKER * 2))
        assert all(len(batch) == expected for batch in batches[:-1])
        assert sum(len(batch) for batch in batches) == 64

    def test_batches_preserve_submission_order(self):
        tasks = [Task(kind="k", params={"i": i}) for i in range(10)]
        batches = ProcessExecutor(4, batch_size=3).shard(tasks)
        flattened = [task for batch in batches for task in batch.tasks]
        assert flattened == tasks
        assert [batch.index for batch in batches] == [0, 1, 2, 3]
        assert [len(batch) for batch in batches] == [3, 3, 3, 1]  # uneven tail

    def test_oversized_batch_is_one_round_trip(self):
        tasks = [Task(kind="k", params={"i": i}) for i in range(4)]
        batches = ProcessExecutor(2, batch_size=99).shard(tasks)
        assert len(batches) == 1 and len(batches[0]) == 4

    def test_empty_task_list(self):
        assert ProcessExecutor(2).shard([]) == []


class TestDeterminismMatrix:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("batch_size", [1, 3, 99])
    def test_rows_bit_identical_to_serial(self, start_method, batch_size):
        """jobs=4 x {fork, spawn} x {size 1, uneven tail, > n_tasks}."""
        tasks = _fig7_tasks(4)
        serial, _ = _collect(SerialExecutor(), tasks)
        executor = ProcessExecutor(4, batch_size=batch_size, start_method=start_method)
        parallel, telemetry = _collect(executor, tasks)
        assert parallel == serial
        assert len(telemetry) == len(tasks)
        sizes = {entry.batch_size for entry in telemetry}
        if batch_size == 1:
            assert sizes == {1}
        elif batch_size == 3:
            assert sizes == {3, 1}  # uneven tail batch
        else:
            assert sizes == {len(tasks)}  # one oversized batch

    def test_shared_memory_transport_rows_identical(self):
        """A 1-byte threshold forces every batch through shared memory."""
        tasks = _fig7_tasks(4)
        before = _shm_entries()
        serial, _ = _collect(SerialExecutor(), tasks)
        parallel, _ = _collect(ProcessExecutor(2, batch_size=2, shm_threshold=1), tasks)
        assert parallel == serial
        assert _shm_entries() - before == set(), "leaked /dev/shm segments"

    def test_run_campaign_batch_size_knob(self):
        tasks = _fig7_tasks(4)
        serial = run_campaign(tasks, jobs=1)
        batched = run_campaign(tasks, jobs=2, batch_size=2)
        assert batched.rows() == serial.rows()
        assert batched.telemetry.batches == 2


class TestTelemetryTiling:
    def test_phases_tile_each_task_wall_exactly(self):
        tasks = _fig7_tasks(4)
        _, telemetry = _collect(ProcessExecutor(2, batch_size=2), tasks)
        for entry in telemetry:
            covered = (
                entry.dispatch_s + entry.queue_wait_s + entry.compute_s + entry.transfer_s
            )
            assert covered == pytest.approx(entry.wall_s, abs=1e-9)
            assert entry.compute_s > 0.0
            assert entry.batch_size == 2

    def test_batch_overheads_amortise_evenly(self):
        """Batch-level dispatch/transfer split into equal per-task shares,
        and every phase stays non-negative (time is never minted)."""
        tasks = _fig7_tasks(4)
        _, telemetry = _collect(ProcessExecutor(2, batch_size=4), tasks)
        assert len({entry.batch_index for entry in telemetry}) == 1
        dispatch_shares = {round(entry.dispatch_s, 12) for entry in telemetry}
        transfer_shares = {round(entry.transfer_s, 12) for entry in telemetry}
        assert len(dispatch_shares) == 1 and len(transfer_shares) == 1
        for entry in telemetry:
            assert entry.dispatch_s >= 0.0
            assert entry.queue_wait_s >= 0.0
            assert entry.compute_s > 0.0
            assert entry.transfer_s >= 0.0

    def test_serial_tasks_are_their_own_batches(self):
        tasks = _fig7_tasks(2)
        _, telemetry = _collect(SerialExecutor(), tasks)
        assert [entry.batch_index for entry in telemetry] == [0, 1]
        assert all(entry.batch_size == 1 for entry in telemetry)


@pytest.mark.skipif("fork" not in START_METHODS, reason="fork start method required")
class TestCrashRecovery:
    """Satellite regression: a worker crash mid-sweep must leave the
    pool shut down, the stamp map drained, no stale shm segments, and a
    store that resumes cleanly."""

    def test_worker_exception_propagates_and_store_resumes(self, tmp_path):
        flag = tmp_path / "explode"
        flag.write_text("armed")

        @register_task("test-batch-crash-cell")
        def _cell(params):
            if params["index"] == 7 and os.path.exists(params["flag"]):
                raise SimulationError("worker crash")
            return [{"index": params["index"], "value": params["index"] * 3}]

        spec = SweepSpec(
            kind="test-batch-crash-cell",
            base={"flag": str(flag)},
            grid={"index": list(range(8))},
        )
        store = ResultStore(tmp_path / "store")
        before = _shm_entries()
        try:
            with pytest.raises(SimulationError, match="worker crash"):
                run_campaign(spec, store=store, jobs=2, batch_size=1)
            assert _shm_entries() - before == set(), "crash leaked shm segments"
            persisted = len(store)
            flag.unlink()  # disarm and resume
            resumed = run_campaign(spec, store=store, jobs=2, batch_size=1)
            assert resumed.cached == persisted
            assert resumed.executed == 8 - persisted
            assert [row["value"] for row in resumed.rows()] == [i * 3 for i in range(8)]
        finally:
            unregister_task("test-batch-crash-cell")

    def test_crash_with_forced_shm_transport_leaks_nothing(self, tmp_path):
        """Completed-but-unconsumed shm batches are released on abort."""

        @register_task("test-batch-shm-crash-cell")
        def _cell(params):
            if params["index"] == 0:
                raise SimulationError("first batch dies")
            # bulky rows so sibling batches cross the 1-byte threshold
            return [{"index": params["index"], "blob": "x" * 2048}]

        tasks = [
            Task(kind="test-batch-shm-crash-cell", params={"index": i}) for i in range(6)
        ]
        before = _shm_entries()
        executor = ProcessExecutor(2, batch_size=1, shm_threshold=1, start_method="fork")
        try:
            with pytest.raises(SimulationError, match="first batch dies"):
                executor.run(tasks, lambda task, rows, telemetry: None)
            assert _shm_entries() - before == set(), "abort path leaked shm segments"
            # The executor must remain usable for a fresh run.
            survivors = tasks[1:]
            results, _ = _collect(executor, survivors)
            assert len(results) == len(survivors)
        finally:
            unregister_task("test-batch-shm-crash-cell")
