"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.base import WordContext
from repro.pcm.cell import CellTechnology


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need random inputs."""
    return np.random.default_rng(1234)


@pytest.fixture
def mlc_context(rng) -> WordContext:
    """A 64-bit MLC word context with random current contents."""
    return WordContext(
        old_cells=rng.integers(0, 4, size=32).astype(np.uint8),
        bits_per_cell=2,
    )


@pytest.fixture
def slc_context(rng) -> WordContext:
    """A 64-bit SLC word context with random current contents."""
    return WordContext(
        old_cells=rng.integers(0, 2, size=64).astype(np.uint8),
        bits_per_cell=1,
    )


def random_word64(rng: np.random.Generator) -> int:
    """A uniformly random 64-bit word."""
    return int(rng.integers(0, 1 << 32)) << 32 | int(rng.integers(0, 1 << 32))


@pytest.fixture
def word64(rng) -> int:
    """One random 64-bit data word."""
    return random_word64(rng)
