"""Tests for error-correcting pointers (ECP)."""

import pytest

from repro.ecc.ecp import ECP
from repro.errors import ConfigurationError


class TestConfiguration:
    def test_name_includes_entry_count(self):
        assert ECP(entries_per_row=3).name == "ecp3"
        assert ECP(entries_per_row=6).name == "ecp6"

    def test_pointer_width(self):
        assert ECP(row_bits=512).pointer_bits == 9

    def test_overhead_per_word(self):
        ecp = ECP(entries_per_row=3, row_bits=512)
        # 3 * (9 + 1) = 30 bits per row over 8 words -> ceil = 4 bits/word.
        assert ecp.overhead_bits_per_word == 4

    def test_invalid_entries(self):
        with pytest.raises(ConfigurationError):
            ECP(entries_per_row=-1)

    def test_invalid_row_bits(self):
        with pytest.raises(ConfigurationError):
            ECP(row_bits=0)


class TestEntryManagement:
    def test_record_until_full(self):
        ecp = ECP(entries_per_row=2, row_bits=64)
        assert ecp.record_fault(0, 3, 1)
        assert ecp.record_fault(0, 7, 0)
        assert not ecp.record_fault(0, 9, 1)

    def test_re_recording_same_cell_updates(self):
        ecp = ECP(entries_per_row=1, row_bits=64)
        assert ecp.record_fault(0, 3, 1)
        assert ecp.record_fault(0, 3, 0)
        assert ecp.row_state(0).entries[3] == 0

    def test_rows_independent(self):
        ecp = ECP(entries_per_row=1, row_bits=64)
        assert ecp.record_fault(0, 3, 1)
        assert ecp.record_fault(1, 3, 1)

    def test_position_out_of_range(self):
        ecp = ECP(row_bits=64)
        with pytest.raises(ConfigurationError):
            ecp.record_fault(0, 64, 1)

    def test_patch_row_applies_entries(self):
        ecp = ECP(entries_per_row=2, row_bits=8)
        ecp.record_fault(0, 2, 1)
        ecp.record_fault(0, 5, 0)
        patched = ecp.patch_row(0, [0] * 8)
        assert patched[2] == 1
        assert patched[5] == 0

    def test_patch_row_without_entries_is_identity(self):
        ecp = ECP(row_bits=4)
        assert ecp.patch_row(7, [1, 0, 1, 0]) == [1, 0, 1, 0]

    def test_patch_row_length_checked(self):
        ecp = ECP(row_bits=8)
        with pytest.raises(ConfigurationError):
            ecp.patch_row(0, [0] * 4)


class TestRowPolicy:
    def test_accepts_up_to_n_errors_anywhere(self):
        ecp = ECP(entries_per_row=3)
        assert ecp.row_outcome([3, 0, 0, 0, 0, 0, 0, 0]).correctable
        assert ecp.row_outcome([1, 1, 1, 0, 0, 0, 0, 0]).correctable

    def test_rejects_more_than_n(self):
        ecp = ECP(entries_per_row=3)
        assert not ecp.row_outcome([2, 2, 0, 0, 0, 0, 0, 0]).correctable

    def test_flexibility_exceeds_secded_for_clustered_faults(self):
        # ECP3 survives 3 errors in the same word, SECDED does not.
        from repro.ecc.hamming import HammingSecded

        clustered = [3, 0, 0, 0, 0, 0, 0, 0]
        assert ECP(entries_per_row=3).row_outcome(clustered).correctable
        assert not HammingSecded().row_outcome(clustered).correctable
