"""Tests for the Hamming (72, 64) SECDED code."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.hamming import HammingSecded
from repro.errors import ConfigurationError, UncorrectableError

word64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestGeometry:
    def test_72_64_code(self):
        code = HammingSecded()
        assert code.data_bits == 64
        assert code.check_bits == 8
        assert code.overhead_bits_per_word == 8

    def test_smaller_word(self):
        code = HammingSecded(data_bits=32)
        assert code.check_bits == 7  # 6 Hamming bits + overall parity

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            HammingSecded(data_bits=0)


class TestCodec:
    def test_clean_word_decodes_unchanged(self):
        code = HammingSecded()
        word = code.encode(0x0123456789ABCDEF)
        data, corrected = code.decode(word.data, word.check)
        assert data == 0x0123456789ABCDEF
        assert corrected == 0

    def test_single_data_bit_error_corrected(self):
        code = HammingSecded()
        original = 0xDEADBEEFCAFEF00D
        word = code.encode(original)
        for position in (0, 5, 31, 63):
            corrupted = word.data ^ (1 << position)
            data, corrected = code.decode(corrupted, word.check)
            assert data == original
            assert corrected == 1

    def test_single_check_bit_error_tolerated(self):
        code = HammingSecded()
        original = 0x0F0F0F0F0F0F0F0F
        word = code.encode(original)
        for position in range(code.check_bits):
            data, corrected = code.decode(word.data, word.check ^ (1 << position))
            assert data == original

    def test_double_error_detected(self):
        code = HammingSecded()
        word = code.encode(0x123456789ABCDEF0)
        corrupted = word.data ^ 0b11  # two bit errors
        with pytest.raises(UncorrectableError):
            code.decode(corrupted, word.check)

    def test_oversized_data_rejected(self):
        with pytest.raises(ConfigurationError):
            HammingSecded().encode(1 << 64)

    @settings(max_examples=30, deadline=None)
    @given(data=word64, position=st.integers(min_value=0, max_value=63))
    def test_any_single_error_corrected(self, data, position):
        code = HammingSecded()
        word = code.encode(data)
        recovered, corrected = code.decode(word.data ^ (1 << position), word.check)
        assert recovered == data
        assert corrected == 1

    @settings(max_examples=30, deadline=None)
    @given(data=word64)
    def test_encode_is_deterministic(self, data):
        code = HammingSecded()
        assert code.encode(data) == code.encode(data)


class TestRowPolicy:
    def test_accepts_one_error_per_word(self):
        code = HammingSecded()
        outcome = code.row_outcome([1, 0, 1, 1, 0, 0, 1, 0])
        assert outcome.correctable
        assert outcome.corrected_cells == 4

    def test_rejects_two_errors_in_one_word(self):
        code = HammingSecded()
        assert not code.row_outcome([0, 2, 0, 0, 0, 0, 0, 0]).correctable

    def test_clean_row(self):
        assert HammingSecded().row_outcome([0] * 8).correctable
