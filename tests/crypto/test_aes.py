"""Tests for the pure-Python AES-128 implementation."""

import numpy as np
import pytest

from repro.crypto.aes import AES128
from repro.errors import ConfigurationError


class TestKnownAnswers:
    def test_fips197_appendix_b(self):
        # FIPS-197 Appendix B worked example.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1(self):
        # FIPS-197 Appendix C.1 AES-128 known-answer test.
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_all_zero_vector(self):
        # NIST ECB-AES128 with the all-zero key and block.
        key = bytes(16)
        plaintext = bytes(16)
        expected = bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")
        assert AES128(key).encrypt_block(plaintext) == expected


class TestInterface:
    def test_wrong_key_length_rejected(self):
        with pytest.raises(ConfigurationError):
            AES128(b"short")

    def test_wrong_block_length_rejected(self):
        cipher = AES128(bytes(16))
        with pytest.raises(ConfigurationError):
            cipher.encrypt_block(b"too-short")

    def test_deterministic(self):
        cipher = AES128(bytes(range(16)))
        block = bytes(range(16))
        assert cipher.encrypt_block(block) == cipher.encrypt_block(block)

    def test_different_blocks_differ(self):
        cipher = AES128(bytes(range(16)))
        assert cipher.encrypt_block(bytes(16)) != cipher.encrypt_block(bytes([1]) + bytes(15))

    def test_output_length(self):
        cipher = AES128(bytes(16))
        assert len(cipher.encrypt_block(bytes(16))) == 16


class TestBatchedCipher:
    """The vectorised multi-block path must match the scalar cipher bit
    for bit — it is what the counter-mode engine trusts for whole-chunk
    pad generation."""

    def test_fips197_appendix_c1_in_batch(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        blocks = np.frombuffer(plaintext, dtype=np.uint8).reshape(1, 16)
        assert AES128(key).encrypt_blocks(blocks).tobytes() == expected

    def test_bit_identical_to_scalar_over_many_blocks(self):
        cipher = AES128(bytes(range(16)))
        rng = np.random.default_rng(42)
        # 257 blocks: not a multiple of anything the reshape could hide.
        blocks = rng.integers(0, 256, size=(257, 16), dtype=np.uint8)
        batched = cipher.encrypt_blocks(blocks)
        for index in range(blocks.shape[0]):
            assert batched[index].tobytes() == cipher.encrypt_block(
                blocks[index].tobytes()
            )

    def test_preserves_input_and_shape(self):
        cipher = AES128(bytes(16))
        blocks = np.zeros((3, 16), dtype=np.uint8)
        out = cipher.encrypt_blocks(blocks)
        assert out.shape == (3, 16)
        assert not blocks.any(), "input matrix must not be mutated"
        assert (out[0] == out[1]).all() and (out[1] == out[2]).all()

    def test_wrong_shape_rejected(self):
        cipher = AES128(bytes(16))
        with pytest.raises(ConfigurationError):
            cipher.encrypt_blocks(np.zeros((4, 8), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            cipher.encrypt_blocks(np.zeros(16, dtype=np.uint8))
