"""Tests for the pure-Python AES-128 implementation."""

import pytest

from repro.crypto.aes import AES128
from repro.errors import ConfigurationError


class TestKnownAnswers:
    def test_fips197_appendix_b(self):
        # FIPS-197 Appendix B worked example.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1(self):
        # FIPS-197 Appendix C.1 AES-128 known-answer test.
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_all_zero_vector(self):
        # NIST ECB-AES128 with the all-zero key and block.
        key = bytes(16)
        plaintext = bytes(16)
        expected = bytes.fromhex("66e94bd4ef8a2c3b884cfa59ca342b2e")
        assert AES128(key).encrypt_block(plaintext) == expected


class TestInterface:
    def test_wrong_key_length_rejected(self):
        with pytest.raises(ConfigurationError):
            AES128(b"short")

    def test_wrong_block_length_rejected(self):
        cipher = AES128(bytes(16))
        with pytest.raises(ConfigurationError):
            cipher.encrypt_block(b"too-short")

    def test_deterministic(self):
        cipher = AES128(bytes(range(16)))
        block = bytes(range(16))
        assert cipher.encrypt_block(block) == cipher.encrypt_block(block)

    def test_different_blocks_differ(self):
        cipher = AES128(bytes(range(16)))
        assert cipher.encrypt_block(bytes(16)) != cipher.encrypt_block(bytes([1]) + bytes(15))

    def test_output_length(self):
        cipher = AES128(bytes(16))
        assert len(cipher.encrypt_block(bytes(16))) == 16
