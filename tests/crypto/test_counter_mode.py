"""Tests for the counter-mode encryption engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.counter_mode import CounterModeEngine, EncryptedLine
from repro.errors import ConfigurationError


def _line(seed: int = 0, words: int = 8, bits: int = 64):
    rng = np.random.default_rng(seed)
    return [int(rng.integers(0, 1 << 32)) << 32 | int(rng.integers(0, 1 << 32)) for _ in range(words)]


class TestRoundTrip:
    def test_encrypt_decrypt_identity(self):
        engine = CounterModeEngine(key=b"k")
        plaintext = _line(1)
        encrypted = engine.encrypt_line(0x10, plaintext)
        assert engine.decrypt_line(encrypted) == plaintext

    def test_roundtrip_with_aes_pad(self):
        engine = CounterModeEngine(key=b"0123456789abcdef", fast_pad=False)
        plaintext = _line(2)
        encrypted = engine.encrypt_line(0x20, plaintext)
        assert engine.decrypt_line(encrypted) == plaintext

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 40), st.integers(min_value=0, max_value=100))
    def test_roundtrip_property(self, address, seed):
        engine = CounterModeEngine(key=b"prop")
        plaintext = _line(seed)
        encrypted = engine.encrypt_line(address, plaintext)
        assert engine.decrypt_line(encrypted) == plaintext


class TestCounters:
    def test_counter_increments_per_write(self):
        engine = CounterModeEngine()
        assert engine.counter_for(5) == 0
        engine.encrypt_line(5, _line())
        assert engine.counter_for(5) == 1
        engine.encrypt_line(5, _line())
        assert engine.counter_for(5) == 2

    def test_counters_per_address(self):
        engine = CounterModeEngine()
        engine.encrypt_line(1, _line())
        engine.encrypt_line(2, _line())
        assert engine.counter_for(1) == 1
        assert engine.counter_for(2) == 1

    def test_reset(self):
        engine = CounterModeEngine()
        engine.encrypt_line(1, _line())
        engine.reset_counters()
        assert engine.counter_for(1) == 0

    def test_rewrites_produce_fresh_pads(self):
        engine = CounterModeEngine()
        plaintext = _line(3)
        first = engine.encrypt_line(9, plaintext)
        second = engine.encrypt_line(9, plaintext)
        assert first.words != second.words


class TestPadProperties:
    def test_ciphertext_looks_unbiased(self):
        engine = CounterModeEngine(key=b"bias-test")
        ones = 0
        total_bits = 0
        for address in range(40):
            encrypted = engine.encrypt_line(address, [0] * 8)
            for word in encrypted.words:
                ones += bin(word).count("1")
                total_bits += 64
        # Encrypting all-zero lines exposes the pad; it should be ~50% ones.
        assert 0.45 < ones / total_bits < 0.55

    def test_pads_differ_across_addresses(self):
        engine = CounterModeEngine()
        assert engine.pad_words(1, 1) != engine.pad_words(2, 1)

    def test_pads_differ_across_counters(self):
        engine = CounterModeEngine()
        assert engine.pad_words(1, 1) != engine.pad_words(1, 2)

    def test_pad_word_width(self):
        engine = CounterModeEngine(line_bits=512, word_bits=64)
        pads = engine.pad_words(0, 1)
        assert len(pads) == 8
        assert all(0 <= p < (1 << 64) for p in pads)


class TestBatchedEncryptLines:
    """``encrypt_lines`` must be bit-identical to an ``encrypt_line``
    loop — including the AES path, whose pads now come from one
    multi-block cipher call per chunk."""

    @pytest.mark.parametrize("fast_pad", [True, False])
    @pytest.mark.parametrize("word_bits", [8, 16, 32, 64])
    def test_matches_scalar_loop(self, fast_pad, word_bits):
        key = b"0123456789abcdef"
        line_bits = 512
        words = line_bits // word_bits
        rng = np.random.default_rng(7)
        # Repeated addresses so per-line counters advance mid-chunk.
        addresses = [0x40 * (i % 5) for i in range(12)]
        matrix = rng.integers(0, 1 << min(word_bits, 63), size=(12, words)).astype(
            np.uint64
        )
        scalar = CounterModeEngine(
            key=key, line_bits=line_bits, word_bits=word_bits, fast_pad=fast_pad
        )
        batched = CounterModeEngine(
            key=key, line_bits=line_bits, word_bits=word_bits, fast_pad=fast_pad
        )
        expected = [
            scalar.encrypt_line(address, [int(w) for w in row]).words
            for address, row in zip(addresses, matrix)
        ]
        cipher = batched.encrypt_lines(addresses, matrix)
        assert cipher is not None
        assert [tuple(int(w) for w in row) for row in cipher] == expected
        assert batched._counters == scalar._counters

    def test_unsupported_word_width_falls_back(self):
        engine = CounterModeEngine(line_bits=512, word_bits=128)
        assert engine.encrypt_lines([0], np.zeros((1, 4), dtype=np.uint64)) is None
        # Fallback must not have bumped any counter.
        assert engine.counter_for(0) == 0

    def test_shape_validation(self):
        engine = CounterModeEngine()
        with pytest.raises(ConfigurationError):
            engine.encrypt_lines([0], np.zeros((1, 3), dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            engine.encrypt_lines([0, 1], np.zeros((1, 8), dtype=np.uint64))


class TestValidation:
    def test_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            CounterModeEngine(line_bits=500, word_bits=64)

    def test_empty_key(self):
        with pytest.raises(ConfigurationError):
            CounterModeEngine(key=b"")

    def test_wrong_word_count(self):
        engine = CounterModeEngine()
        with pytest.raises(ConfigurationError):
            engine.encrypt_line(0, [1, 2, 3])

    def test_encrypted_line_is_frozen(self):
        engine = CounterModeEngine()
        line = engine.encrypt_line(0, _line())
        with pytest.raises(AttributeError):
            line.address = 5
