"""Tests for the experiment registry and the cheap (closed-form) experiments."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import available_experiments, get_experiment, run_experiment
from repro.sim.results import ResultTable


class TestRegistry:
    def test_every_figure_and_table_registered(self):
        names = available_experiments()
        for expected in [
            "fig1", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13", "table1", "table2",
        ]:
            assert expected in names

    def test_unknown_identifier_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_identifiers_case_insensitive(self):
        assert get_experiment("FIG1") is get_experiment("fig1")


class TestFastExperiments:
    def test_fig1_shape(self):
        table = run_experiment("fig1")
        assert isinstance(table, ResultTable)
        rows = {row["cosets"]: row for row in table}
        assert rows[2]["bcc_reduction_percent"] > rows[2]["rcc_reduction_percent"]
        assert rows[256]["rcc_reduction_percent"] > rows[256]["bcc_reduction_percent"]

    def test_fig3_reproduces_figure(self):
        table = run_experiment("fig3")
        values = {row["quantity"]: row["value"] for row in table}
        assert values["decode(Xopt) == D"] is True
        assert values["auxiliary bits (kernel index + flags)"] == "000110"

    def test_table1_structure(self):
        table = run_experiment("table1")
        assert len(table) == 4
        for row in table:
            old = row["old_state"][2:4]
            assert row[f"N({old})"] == "-"
            # Intermediate new states are always "high" unless unchanged.
            for new in ("01", "11"):
                if new != old:
                    assert row[f"N({new})"] == "high"

    def test_table2_lists_parameters(self):
        table = run_experiment("table2")
        parameters = dict((row["parameter"], row["value"]) for row in table)
        assert parameters["baseline access delay (ns)"] == 84.0
        assert parameters["row size (bits)"] == 512

    def test_fig6_contains_all_series(self):
        table = run_experiment("fig6", coset_counts=(32, 64))
        designs = set(table.column("design"))
        assert designs == {"RCC", "VCC-64", "VCC-64-Stored", "VCC-32", "VCC-32-Stored"}

    def test_fig13_ipc_range(self):
        table = run_experiment("fig13", benchmarks=["lbm", "xz"], num_cosets=256)
        for row in table:
            assert 0.9 < row["normalized_ipc"] <= 1.0
        vcc = [r["normalized_ipc"] for r in table if r["technique"] == "VCC"]
        rcc = [r["normalized_ipc"] for r in table if r["technique"] == "RCC"]
        assert all(v >= r for v, r in zip(vcc, rcc))

    def test_json_export(self, tmp_path):
        table = run_experiment("fig1")
        path = tmp_path / "fig1.json"
        table.to_json(path)
        assert path.exists()


class TestRunnerCli:
    def test_list_option(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "fig1" in captured.out

    def test_run_single_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig1"]) == 0
        captured = capsys.readouterr()
        assert "Fig. 1" in captured.out

    def test_run_with_json_dir(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--json-dir", str(tmp_path)]) == 0
        assert (tmp_path / "table1.json").exists()

    def test_unknown_experiment_exits_2_with_available_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig99"]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment" in captured.err
        assert "fig1" in captured.err  # the available-experiments list

    def test_jobs_flag_runs_sweeps_through_campaign(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig13", "--jobs", "2"]) == 0
        assert "Fig. 13" in capsys.readouterr().out

    def test_jobs_flag_rejected_below_one(self, capsys):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit):
            main(["fig13", "--jobs", "0"])

    def test_store_dir_caches_sweep_cells(self, tmp_path, capsys):
        from repro.experiments.runner import main

        store = tmp_path / "store"
        assert main(["fig13", "--store-dir", str(store)]) == 0
        capsys.readouterr()
        assert any(store.rglob("*.json"))
