"""Observing a run with ``repro.obs``: counters, spans, and the report.

This walks the telemetry layer end to end:

1. read hot-path **counters** after a simulation — replay waves,
   encoder candidate evaluations, pad chunks — via
   :func:`repro.obs.metrics_snapshot`;
2. enable the **span tracer** and run a small campaign with workers,
   producing a JSONL trace file (the CLI equivalent is
   ``python -m repro.campaign fig7 --trace trace.jsonl``);
3. build the **run report** from the trace — top spans by self-time and
   the executor phase breakdown (queue-wait / dispatch / compute /
   result-transfer) — the same rollup as
   ``python -m repro.obs report trace.jsonl``;
4. show that telemetry only observes: the rows of a traced run are
   bit-identical to an untraced one.

Run with ``python examples/telemetry_run.py``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import obs
from repro.campaign import SweepSpec, run_campaign


def sweep() -> SweepSpec:
    # A small fig7-style grid: 2 coset counts x 2 seeds = 4 tasks.
    return SweepSpec(
        kind="fig7-energy-cell",
        base={
            "rows": 32,
            "word_bits": 64,
            "line_bits": 512,
            "num_writes": 60,
            "technology": "mlc",
            "encoder": "rcc",
            "cost": "energy-then-saw",
            "label": "RCC",
        },
        grid={"cosets": [4, 8]},
        seeds=(3, 4),
    )


def main() -> None:
    # --- 1. counters -------------------------------------------------
    # Metrics are always on (they cost <2% on the replay engine, gated
    # by benchmarks/bench_obs_overhead.py) and register themselves like
    # encoders do; a run leaves its footprint in the process registry.
    obs.reset_metrics()
    untraced = run_campaign(sweep(), store=None, jobs=1)
    snapshot = obs.metrics_snapshot()
    print("hot-path counters after an untraced serial run:")
    for name in ("replay.waves", "encode.candidates", "crypto.pad_chunks"):
        payload = snapshot.get(name, {"value": 0})
        print(f"  {name:24s} {payload.get('value', payload)}")

    # --- 2. tracing + 3. the report ---------------------------------
    with tempfile.TemporaryDirectory(prefix="telemetry-example-") as tmp:
        trace = Path(tmp) / "trace.jsonl"
        obs.enable_tracing(str(trace))  # workers inherit via REPRO_TRACE
        try:
            traced = run_campaign(sweep(), store=None, jobs=2)
        finally:
            obs.disable_tracing()

        events = obs.load_trace(trace)
        report = obs.build_report(events)
        print(f"\ntrace: {len(events)} events from {report['processes']} process(es)")
        obs.render_text(report, sys.stdout, top=5)

    # --- 4. telemetry only observes ----------------------------------
    assert traced.rows() == untraced.rows()
    print("traced rows are bit-identical to the untraced run")


if __name__ == "__main__":
    main()
