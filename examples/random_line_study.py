"""Random-line study: the batched driver behind Figs. 2, 7, and 8.

Drives uniformly random encrypted lines through the full memory
controller with ``MemoryController.write_random_lines`` — the batched
sibling of a ``write_line`` loop, bit-identical in accounting but several
times faster on the unencoded identity path — and then runs the Fig. 7
sweep through the campaign engine with two workers and a result store
(re-running the script resumes every cell from cache).

Run with ``python examples/random_line_study.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.sim.energy_sim import EnergyStudyConfig, random_data_energy_study
from repro.sim.harness import TechniqueSpec, build_controller
from repro.utils.rng import make_rng


def batched_driver_demo() -> None:
    """One controller, ten thousand random lines, one batched call."""
    controller = build_controller(
        TechniqueSpec(encoder="unencoded", cost="energy", label="Unencoded"),
        rows=128,
        seed=2022,
    )
    start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=demo throughput printout; elapsed time never enters stored results
    replay = controller.write_random_lines(10_000, make_rng(2022, "random-lines"))
    elapsed = time.perf_counter() - start  # repro: allow[DET003,OBS001] reason=demo throughput printout; elapsed time never enters stored results
    stats = replay.write_stats()
    print(
        f"wrote {replay.writes} random lines in {elapsed:.2f}s "
        f"({replay.writes / elapsed:.0f} lines/s)"
    )
    print(
        f"  energy {stats.total_energy_pj / 1e6:.3f} uJ, "
        f"bits changed {stats.bits_changed}, SAW cells {stats.saw_cells}\n"
    )


def fig7_campaign_demo(store: Path) -> None:
    """The Fig. 7 sweep as a two-worker campaign with cached resume."""
    config = EnergyStudyConfig(rows=96, num_writes=150, seed=2022)
    for attempt in ("first run (executes every cell)", "second run (all from cache)"):
        start = time.perf_counter()  # repro: allow[DET003,OBS001] reason=demo throughput printout; elapsed time never enters stored results
        table = random_data_energy_study(
            coset_counts=(32, 64, 128, 256),
            config=config,
            jobs=2,
            store=store,
        )
        print(f"{attempt}: {time.perf_counter() - start:.2f}s")  # repro: allow[DET003,OBS001] reason=demo throughput printout; elapsed time never enters stored results
    print()
    print(table.format())


def main() -> None:
    batched_driver_demo()
    with tempfile.TemporaryDirectory() as tmp:
        fig7_campaign_demo(Path(tmp) / "store")


if __name__ == "__main__":
    main()
