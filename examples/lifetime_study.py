"""Lifetime study: how much longer does an encoded memory survive?

Runs the scaled-down wear-out simulation (Fig. 11 methodology) for one
benchmark: every cell gets an endurance from the process-variation
distribution, the trace is replayed until four rows can no longer be
written correctly, and the writes-to-failure of each protection technique
is reported relative to the unencoded baseline.

Run with ``python examples/lifetime_study.py [benchmark]``.
"""

from __future__ import annotations

import sys
import time

from repro.sim.harness import TechniqueSpec
from repro.sim.lifetime_sim import LifetimeStudyConfig, simulate_lifetime


def main(benchmark: str = "mcf") -> None:
    config = LifetimeStudyConfig(rows=48, mean_endurance_writes=64, trace_writebacks=300)
    techniques = [
        TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="Unencoded"),
        TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="SECDED", corrector="secded"),
        TechniqueSpec(encoder="unencoded", cost="saw-then-energy", label="ECP3", corrector="ecp3"),
        TechniqueSpec(encoder="flipcy", cost="saw-then-energy", label="Flipcy"),
        TechniqueSpec(encoder="dbi/fnw", cost="saw-then-energy", label="DBI/FNW"),
        TechniqueSpec(encoder="vcc-stored", cost="saw-then-energy", num_cosets=256, label="VCC"),
        TechniqueSpec(encoder="rcc", cost="saw-then-energy", num_cosets=256, label="RCC"),
    ]

    print(f"benchmark {benchmark}: scaled memory ({config.rows} rows, "
          f"mean endurance {config.mean_endurance_writes:.0f} writes), "
          "failure = 4 rows with unmaskable/uncorrectable errors\n")
    baseline = None
    for spec in techniques:
        start = time.time()  # repro: allow[DET003] reason=progress timing for console output only; elapsed time is printed, never recorded in results
        outcome = simulate_lifetime(spec, benchmark, config)
        if baseline is None:
            baseline = outcome.writes
        improvement = 100.0 * (outcome.writes / baseline - 1.0)
        censored = "  (censored at cap)" if outcome.censored else ""
        print(
            f"{spec.label:10s}  writes to failure {outcome.writes:7d}"
            f"  vs unencoded {improvement:+6.1f} %"
            f"  ({time.time() - start:4.1f}s){censored}"  # repro: allow[DET003] reason=progress timing for console output only; elapsed time is printed, never recorded in results
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mcf")
