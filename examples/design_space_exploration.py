"""Design-space exploration (Section V style).

Sweeps the VCC design space — coset count, kernel source (generated vs
stored), and kernel width — and reports, for each configuration, the
encoder hardware cost (area / energy / delay from the Fig. 6 model) next
to the dynamic-energy saving it achieves on encrypted data.  This is the
trade-off table an architect would use to pick a configuration, and it
shows why the paper settles on VCC(64, 256, 16): savings saturate while
the hardware stays cheap.

Run with ``python examples/design_space_exploration.py``.
"""

from __future__ import annotations

from repro.coding.base import WordContext
from repro.coding.cost import EnergyCost
from repro.core.config import VCCConfig
from repro.core.vcc import VCCEncoder
from repro.hardware.synthesis import DesignPoint, estimate_design
from repro.pcm.cell import CellTechnology
from repro.pcm.energy import MLCEnergyModel
from repro.sim.repetition import repeat_metric
from repro.utils.bitops import random_word
from repro.utils.rng import make_rng


def energy_saving_percent(config: VCCConfig, seed: int, words: int = 150) -> float:
    """Energy saving of one VCC configuration on random (encrypted) data."""
    model = MLCEnergyModel()
    encoder = VCCEncoder(
        config, cost_function=EnergyCost(CellTechnology.MLC, mlc_model=model), seed=seed
    )
    rng = make_rng(seed, f"dse-{config.describe()}")
    baseline = 0.0
    encoded = 0.0
    for _ in range(words):
        data = random_word(rng, 64)
        old = random_word(rng, 64)
        context = WordContext.from_word(old, 64, 2)
        result = encoder.encode(data, context)
        baseline += model.word_energy(old, data)
        encoded += model.word_energy(old, result.codeword) + model.aux_energy(0, result.aux)
    return 100.0 * (baseline - encoded) / baseline


def main() -> None:
    print(f"{'configuration':42s} {'saving %':>10s} {'area um^2':>12s} {'energy pJ':>10s} {'delay ns':>9s}")
    for num_cosets in (32, 64, 128, 256):
        for stored in (False, True):
            config = VCCConfig.for_cosets(num_cosets, stored_kernels=stored)
            metric = repeat_metric(
                lambda seed: energy_saving_percent(config, seed),
                repetitions=3,
                base_seed=100,
                name="energy-saving",
            )
            hardware = estimate_design(
                DesignPoint(style="vcc", num_cosets=num_cosets, stored_kernels=stored)
            )
            label = f"VCC(64,{num_cosets},{config.num_kernels})" + (
                " stored" if stored else " generated"
            )
            print(
                f"{label:42s} {metric.mean:9.1f}±{metric.std:3.1f}"
                f" {hardware.area_um2:12.0f} {hardware.energy_pj:10.1f} {hardware.delay_ns:9.2f}"
            )
    rcc = estimate_design(DesignPoint(style="rcc", num_cosets=256))
    print(
        f"{'RCC(64,256) reference encoder':42s} {'—':>10s} {rcc.area_um2:12.0f}"
        f" {rcc.energy_pj:10.1f} {rcc.delay_ns:9.2f}"
    )


if __name__ == "__main__":
    main()
