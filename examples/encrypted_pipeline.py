"""End-to-end pipeline demo: why encryption breaks biased encodings.

The motivation of the paper in one script: Flip-N-Write saves many bit
flips on *plaintext* integer data, but once the same lines go through
counter-mode encryption the bias disappears and FNW's advantage collapses,
while VCC (random virtual cosets) keeps reducing costly transitions.

The script writes the same synthetic benchmark trace three ways —
unencrypted FNW, encrypted FNW, encrypted VCC — and reports bit changes
and MLC write energy for each.

Run with ``python examples/encrypted_pipeline.py``.
"""

from __future__ import annotations

from repro.pcm.cell import CellTechnology
from repro.sim.harness import TechniqueSpec, build_controller, drive_trace
from repro.traces.synthetic import generate_trace
from repro.traces.trace import Trace


def run_case(label: str, spec: TechniqueSpec, trace: Trace, encrypt: bool, rows: int) -> None:
    controller = build_controller(
        spec, rows=rows, technology=CellTechnology.MLC, seed=5, encrypt=encrypt
    )
    drive_trace(controller, trace)
    stats = controller.stats
    print(
        f"{label:28s}  bits changed {stats.bits_changed:8d}"
        f"  write energy {stats.total_energy_pj/1e6:8.3f} uJ"
    )


def main() -> None:
    rows = 96
    # deepsjeng writes small integers: heavily biased plaintext.
    trace = generate_trace("deepsjeng", num_writebacks=200, memory_lines=rows, seed=4)

    print("same trace, three write paths:\n")
    run_case(
        "plaintext + FNW",
        TechniqueSpec(encoder="fnw", cost="bit-changes", label="fnw"),
        trace,
        encrypt=False,
        rows=rows,
    )
    run_case(
        "encrypted + FNW",
        TechniqueSpec(encoder="fnw", cost="bit-changes", label="fnw"),
        trace,
        encrypt=True,
        rows=rows,
    )
    run_case(
        "encrypted + VCC(64,256,16)",
        TechniqueSpec(encoder="vcc", cost="energy-then-saw", num_cosets=256, label="vcc"),
        trace,
        encrypt=True,
        rows=rows,
    )
    print(
        "\nEncryption erases the data bias FNW relies on; VCC recovers the"
        "\nsavings because its virtual cosets are effective on unbiased data."
    )


if __name__ == "__main__":
    main()
