"""Quickstart: encode one encrypted cache line with Virtual Coset Coding.

This walks the public API end to end:

1. build a VCC(64, 256, 16) encoder optimising MLC write energy;
2. encrypt a cache line with the counter-mode engine;
3. encode each 64-bit word against the current memory contents;
4. decode and decrypt, checking the round trip;
5. compare the write energy against storing the encrypted line directly.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import CellTechnology, MLCEnergyModel, VCCConfig, VCCEncoder, WordContext
from repro.coding.cost import EnergyCost
from repro.crypto import CounterModeEngine
from repro.pcm.array import word_to_cells


def main() -> None:
    energy_model = MLCEnergyModel()
    encoder = VCCEncoder(
        VCCConfig.for_cosets(256, technology=CellTechnology.MLC),
        cost_function=EnergyCost(CellTechnology.MLC, mlc_model=energy_model),
    )
    print(f"encoder: {encoder.config.describe()}")

    # A cache line the application wants to write back (plaintext).
    plaintext = [0x0123456789ABCDEF ^ (i * 0x1111111111111111) for i in range(8)]

    # Counter-mode encryption, as performed by the on-chip unit of Fig. 4.
    engine = CounterModeEngine(key=b"quickstart-key", line_bits=512, word_bits=64)
    encrypted = engine.encrypt_line(address=0x40, plaintext_words=plaintext)

    # The memory location currently holds some other (random-looking) data.
    rng = np.random.default_rng(1)
    old_words = [int(rng.integers(0, 1 << 63)) for _ in range(8)]

    total_unencoded = 0.0
    total_vcc = 0.0
    decoded_words = []
    for data_word, old_word in zip(encrypted.words, old_words):
        context = WordContext.from_word(old_word, word_bits=64, bits_per_cell=2)
        encoded = encoder.encode(data_word, context)

        # Round trip: decoding recovers the encrypted word exactly.
        decoded_words.append(encoder.decode(encoded.codeword, encoded.aux))
        assert decoded_words[-1] == data_word

        total_unencoded += energy_model.word_energy(old_word, data_word)
        total_vcc += energy_model.word_energy(old_word, encoded.codeword)
        total_vcc += energy_model.aux_energy(0, encoded.aux)

    saving = 100.0 * (total_unencoded - total_vcc) / total_unencoded
    print(f"write energy, encrypted line stored directly : {total_unencoded:8.1f} pJ")
    print(f"write energy, encrypted line stored with VCC  : {total_vcc:8.1f} pJ")
    print(f"dynamic-energy saving                         : {saving:8.1f} %")

    # The full decrypt path: decode then XOR the counter-mode pad away.
    recovered = engine.decrypt_line(
        type(encrypted)(
            address=encrypted.address, counter=encrypted.counter, words=tuple(decoded_words)
        )
    )
    assert recovered == plaintext
    print("decrypt(decode(encode(encrypt(line)))) == line : OK")


if __name__ == "__main__":
    main()
