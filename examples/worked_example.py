"""Reproduce the paper's Fig. 3 worked example step by step.

The figure encodes a specific 64-bit encrypted block with VCC(64, 64, 4)
using four fixed 16-bit kernels, minimising the number of written '1's
against an all-zero location.  This script prints every intermediate array
of the figure — the per-kernel/per-partition costs (d.1), the minimum of
the XOR/XNOR forms (d.2), the per-kernel totals including auxiliary bits
(d.3) — and the final selection, then checks it against the encoder.

Run with ``python examples/worked_example.py``.
"""

from __future__ import annotations

from repro.coding.base import WordContext
from repro.experiments.fig03_worked_example import (
    FIG3_DATA_BLOCK,
    FIG3_KERNELS,
    build_example_encoder,
)
from repro.utils.bitops import split_subblocks


def main() -> None:
    data = FIG3_DATA_BLOCK
    kernels = FIG3_KERNELS
    subblocks = split_subblocks(data, 64, 16)

    print("D  =", " ".join(f"{sub:016b}" for sub in subblocks))
    for index, kernel in enumerate(kernels):
        print(f"R{index} = {kernel:016b}")

    print("\n(d.1) ones in d_j XOR R_i:")
    raw_costs = []
    for kernel in kernels:
        row = [bin(sub ^ kernel).count("1") for sub in subblocks]
        raw_costs.append(row)
        print("   ", row)

    print("\n(d.2) min(ones(XOR), ones(XNOR)) per partition (inverted entries use ~R_i):")
    folded = []
    flags_per_kernel = []
    for row in raw_costs:
        folded.append([min(cost, 16 - cost) for cost in row])
        flags_per_kernel.append([1 if cost > 8 else 0 for cost in row])
        print("   ", folded[-1])

    print("\n(d.3) per-kernel totals, each including the '1's of its own aux bits:")
    for index, row in enumerate(folded):
        flags = flags_per_kernel[index]
        aux = (index << 4) | int("".join(str(f) for f in flags), 2)
        total = sum(row) + bin(aux).count("1")
        print(f"    kernel {index}: {total}  (aux = {aux:06b})")

    encoder = build_example_encoder()
    context = WordContext.blank(64, bits_per_cell=2)
    encoded = encoder.encode(data, context)
    print("\nencoder selection:")
    print(f"    kernel index = {encoded.aux >> 4}")
    print(f"    flip flags   = {encoded.aux & 0xF:04b}")
    print(f"    Xopt         = {encoded.codeword:064b}")
    print(f"    cost         = {encoded.cost}")
    assert encoder.decode(encoded.codeword, encoded.aux) == data
    print("    decode(Xopt, aux) == D : OK")


if __name__ == "__main__":
    main()
