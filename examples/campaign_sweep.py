"""Running sweeps in parallel with the campaign engine.

This walks the campaign subsystem end to end:

1. declare a sweep grid over technique fields, benchmarks, and seeds
   with :class:`~repro.campaign.SweepSpec`;
2. run it with worker processes and a content-addressed result store
   (:func:`~repro.campaign.run_campaign`);
3. re-run it to show every task coming back from the cache;
4. regenerate a paper figure (Fig. 10) through the same engine via its
   experiment entry point.

Run with ``python examples/campaign_sweep.py``.  The equivalent command
lines are::

    python -m repro.campaign fig10 --jobs 4 --store .campaign-store
    python -m repro.campaign --spec sweep.json --jobs 4
"""

from __future__ import annotations

import tempfile

from repro.campaign import SweepSpec, run_campaign
from repro.experiments.fig10_saw_benchmarks import run as run_fig10


def main() -> None:
    # A grid over the Fig. 10 cell kind: 2 benchmarks x 2 series x 2
    # seeds = 8 independent tasks.  Every task carries its own seed, so
    # the rows are bit-identical no matter how many workers run them.
    spec = SweepSpec(
        kind="fig10-saw-cell",
        base={
            "writebacks": 40,
            "rows": 64,
            "word_bits": 64,
            "line_bits": 512,
            "technology": "mlc",
            "fault_rate": 1e-2,
            "num_cosets": 32,
        },
        grid={"benchmark": ["lbm", "mcf"], "series": ["unencoded", "vcc"]},
        seeds=(7, 8),
    )
    tasks = spec.expand()
    print(f"sweep expands to {len(tasks)} tasks, e.g. {tasks[0].describe()}")

    with tempfile.TemporaryDirectory(prefix="campaign-example-") as store_dir:
        result = run_campaign(spec, store=store_dir, jobs=2)
        print(f"first run : {result.executed} executed, {result.cached} from cache")
        for row, task in zip(result.rows(), tasks):
            print(f"  seed {task.params['seed']}: {row}")

        # Same spec, same store: nothing executes, the rows come back
        # identically — this is also how an interrupted campaign resumes.
        again = run_campaign(spec, store=store_dir, jobs=2)
        print(f"second run: {again.executed} executed, {again.cached} from cache")
        assert again.rows() == result.rows()

        # The paper's benchmark sweeps go through the same engine; the
        # rows are bit-identical to a serial run for any jobs count.
        table = run_fig10(
            benchmarks=("lbm", "mcf"),
            num_cosets=32,
            writebacks_per_benchmark=40,
            rows=64,
            jobs=2,
            store_dir=store_dir,
        )
        print()
        print(table.format())


if __name__ == "__main__":
    main()
