"""Energy study: how much dynamic write energy does VCC save on encrypted data?

Drives the full memory-controller pipeline (encrypt -> encode -> write)
for a synthetic SPEC-like benchmark trace against an MLC PCM array with a
fixed stuck-at fault snapshot, comparing the unencoded baseline with VCC
and RCC at 256 cosets — a scaled-down rendition of the paper's Fig. 9.

Run with ``python examples/energy_study.py [benchmark]``.
"""

from __future__ import annotations

import sys

from repro.pcm.cell import CellTechnology
from repro.pcm.faultmap import FaultMap
from repro.sim.harness import TechniqueSpec, build_controller, drive_trace
from repro.traces.synthetic import generate_trace


def main(benchmark: str = "lbm") -> None:
    rows = 96
    writebacks = 200
    trace = generate_trace(benchmark, num_writebacks=writebacks, memory_lines=rows, seed=1)
    fault_map = FaultMap(rows=rows, cells_per_row=256, fault_rate=1e-2, seed=2)

    techniques = [
        TechniqueSpec(encoder="unencoded", cost="energy", label="Unencoded"),
        TechniqueSpec(encoder="vcc", cost="energy-then-saw", num_cosets=256, label="VCC (generated)"),
        TechniqueSpec(encoder="vcc-stored", cost="energy-then-saw", num_cosets=256, label="VCC (stored)"),
        TechniqueSpec(encoder="rcc", cost="energy-then-saw", num_cosets=256, label="RCC"),
    ]

    print(f"benchmark {benchmark}: {writebacks} encrypted line writebacks, "
          f"{rows} rows, fixed 1e-2 fault snapshot\n")
    baseline = None
    for spec in techniques:
        controller = build_controller(
            spec,
            rows=rows,
            technology=CellTechnology.MLC,
            fault_map=fault_map,
            seed=3,
        )
        drive_trace(controller, trace)
        stats = controller.stats
        if baseline is None:
            baseline = stats.total_energy_pj
        saving = 100.0 * (baseline - stats.total_energy_pj) / baseline
        print(
            f"{spec.label:16s}  energy {stats.total_energy_pj/1e6:8.3f} uJ"
            f"  saving {saving:6.1f} %"
            f"  SAW cells {stats.saw_cells:5d}"
            f"  bits changed {stats.bits_changed}"
        )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "lbm")
